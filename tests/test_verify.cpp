// Tests for the static schedule verifier: happens-before deadlock proofs
// with minimal-cycle witnesses, buffer-race detection, lint, conformance
// closed forms, and agreement with the threaded fuzz oracle.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bsbutil/rng.hpp"
#include "coll/plan.hpp"
#include "coll/tags.hpp"
#include "core/transfer_analysis.hpp"
#include "fuzz/case.hpp"
#include "fuzz/runner.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"
#include "trace/reduce_flow.hpp"
#include "trace/schedule.hpp"
#include "verify/conformance.hpp"
#include "verify/equiv.hpp"
#include "verify/hb.hpp"
#include "verify/lint.hpp"
#include "verify/tagspace.hpp"
#include "verify/verifier.hpp"

namespace bsb::verify {
namespace {

using trace::Op;
using trace::OpKind;
using trace::Schedule;

Op send_op(int dst, int tag, std::uint64_t bytes, std::uint64_t off) {
  Op op;
  op.kind = OpKind::Send;
  op.dst = dst;
  op.send_tag = tag;
  op.send_bytes = bytes;
  op.send_off = off;
  return op;
}

Op recv_op(int src, int tag, std::uint64_t cap, std::uint64_t off) {
  Op op;
  op.kind = OpKind::Recv;
  op.src = src;
  op.recv_tag = tag;
  op.recv_cap = cap;
  op.recv_off = off;
  return op;
}

Op sendrecv_op(int dst, std::uint64_t send_bytes, std::uint64_t send_off,
               int src, std::uint64_t recv_cap, std::uint64_t recv_off) {
  Op op;
  op.kind = OpKind::SendRecv;
  op.dst = dst;
  op.send_tag = coll::tags::kRingAllgather;
  op.send_bytes = send_bytes;
  op.send_off = send_off;
  op.src = src;
  op.recv_tag = coll::tags::kRingAllgather;
  op.recv_cap = recv_cap;
  op.recv_off = recv_off;
  return op;
}

Schedule two_rank_schedule(std::uint64_t nbytes = 256) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = nbytes;
  s.ops.resize(2);
  return s;
}

// --------------------------------------------------- happens-before proofs

TEST(Hb, ReceiveReceiveCycleYieldsMinimalWitness) {
  // Both ranks receive before sending: the canonical deadlock. The witness
  // must walk the 2-cycle and name each blocked op with rank/op provenance.
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {recv_op(1, t, 128, 128), send_op(1, t, 128, 0)};
  s.ops[1] = {recv_op(0, t, 128, 0), send_op(0, t, 128, 128)};
  const auto m = trace::match_schedule(s);
  const HbReport hb = analyze_hb(s, m, HbOptions{0});
  EXPECT_FALSE(hb.ok);
  EXPECT_TRUE(hb.deadlock);
  ASSERT_EQ(hb.cycle.size(), 2u);
  EXPECT_EQ(hb.cycle[0].rank, 0);
  EXPECT_EQ(hb.cycle[0].op, 0);
  EXPECT_EQ(hb.cycle[1].rank, 1);
  EXPECT_EQ(hb.cycle[1].op, 0);
  EXPECT_NE(hb.diagnostics.find("wait-for cycle"), std::string::npos);
}

TEST(Hb, HeadToHeadSendsDeadlockOnlyUnderRendezvous) {
  // Send-then-receive on both sides: classic eager/rendezvous split. With
  // eager buffering both sends complete at post; under pure rendezvous
  // each send waits for a receive that is never posted.
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {send_op(1, t, 128, 0), recv_op(1, t, 128, 128)};
  s.ops[1] = {send_op(0, t, 128, 128), recv_op(0, t, 128, 0)};
  const auto m = trace::match_schedule(s);

  const HbReport rndv = analyze_hb(s, m, HbOptions{0});
  EXPECT_TRUE(rndv.deadlock);
  ASSERT_EQ(rndv.cycle.size(), 2u);
  EXPECT_NE(rndv.diagnostics.find("rendezvous send"), std::string::npos);

  const HbReport eager = analyze_hb(s, m, HbOptions{128});
  EXPECT_TRUE(eager.ok);
  EXPECT_FALSE(eager.deadlock);
  EXPECT_EQ(eager.eager_msgs, 2u);
  // The high-water mark is the greedy (fastest-draining) interleaving's
  // residency — here one send is buffered while the other goes direct, so
  // any execution needs at least 128 bytes of eager capacity.
  EXPECT_EQ(eager.eager_high_water_bytes, 128u);
}

TEST(Hb, EagerReleaseNeverUnderflows) {
  // Rank 0 receives before it sends; the greedy order completes that
  // receive before rank 1's send half is accounted. A naive release would
  // underflow the buffered-bytes counter; the per-message state must not.
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {recv_op(1, t, 128, 128), send_op(1, t, 128, 0)};
  s.ops[1] = {send_op(0, t, 128, 128), recv_op(0, t, 128, 0)};
  const auto m = trace::match_schedule(s);
  const HbReport hb = analyze_hb(s, m, HbOptions{1024});
  EXPECT_TRUE(hb.ok);
  EXPECT_LE(hb.eager_high_water_bytes, 256u);
  EXPECT_GE(hb.eager_high_water_bytes, 128u);
}

TEST(Hb, OverlappingSendRecvHalvesAreARace) {
  Schedule s = two_rank_schedule();
  s.ops[0] = {sendrecv_op(1, 128, 0, 1, 128, 64)};   // send [0,128) recv [64,192)
  s.ops[1] = {sendrecv_op(0, 128, 128, 0, 128, 0)};  // disjoint: clean
  const auto m = trace::match_schedule(s);
  const HbReport hb = analyze_hb(s, m, HbOptions{0});
  EXPECT_FALSE(hb.ok);
  EXPECT_FALSE(hb.deadlock);  // it runs; the bytes are just unsafe
  ASSERT_EQ(hb.races.size(), 1u);
  EXPECT_EQ(hb.races[0].rank, 0);
  EXPECT_EQ(hb.races[0].op, 0);
}

TEST(Hb, BarrierCountMismatchIsReported) {
  Schedule s = two_rank_schedule();
  Op b;
  b.kind = OpKind::Barrier;
  s.ops[0] = {b};
  s.ops[1] = {};
  const auto m = trace::match_schedule(s);
  const HbReport hb = analyze_hb(s, m, HbOptions{0});
  EXPECT_TRUE(hb.deadlock);
  EXPECT_NE(hb.diagnostics.find("barrier"), std::string::npos);
}

// ------------------------------------------------------------------- lint

TEST(Lint, SelfSendIsAnError) {
  Schedule s = two_rank_schedule();
  s.ops[0] = {send_op(0, coll::tags::kBcastBinomial, 4, 0)};
  const LintReport rep = lint_schedule(s);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.to_string().find("self"), std::string::npos);
}

TEST(Lint, OutOfBoundsIntervalIsAnError) {
  Schedule s = two_rank_schedule(64);
  const int t = coll::tags::kBcastBinomial;
  s.ops[0] = {send_op(1, t, 128, 0)};  // past nbytes=64
  s.ops[1] = {recv_op(0, t, 128, 0)};
  EXPECT_FALSE(lint_schedule(s).ok);
}

TEST(Lint, UnknownTagIsOnlyAWarning) {
  Schedule s = two_rank_schedule();
  s.ops[0] = {send_op(1, 9999, 4, 0)};
  s.ops[1] = {recv_op(0, 9999, 4, 0)};
  const LintReport rep = lint_schedule(s);
  EXPECT_TRUE(rep.ok);  // warnings do not invalidate
  EXPECT_FALSE(rep.findings.empty());
}

TEST(Lint, NegativeTagIsAnError) {
  Schedule s = two_rank_schedule();
  s.ops[0] = {send_op(1, -3, 4, 0)};
  s.ops[1] = {recv_op(0, -3, 4, 0)};
  EXPECT_FALSE(lint_schedule(s).ok);
}

// ---------------------------------------------------------- orchestration

TEST(Verifier, BrokenScheduleFailsWithDeadlockWitness) {
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {recv_op(1, t, 128, 128), send_op(1, t, 128, 0)};
  s.ops[1] = {recv_op(0, t, 128, 0), send_op(0, t, 128, 128)};
  VerifyOptions opt;
  opt.check_dataflow = false;
  const CaseResult res = verify_schedule(s, 0, opt);
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.failures.empty());
  EXPECT_EQ(res.failures[0].rfind("deadlock", 0), 0u) << res.failures[0];
  EXPECT_NE(res.failures[0].find("rank 0 op 0"), std::string::npos);
  EXPECT_NE(res.failures[0].find("rank 1 op 0"), std::string::npos);
}

TEST(Verifier, PaperAnchorCountsAtP8AndP10) {
  // The paper's table: 56 -> 44 transfers at P=8, 90 -> 75 at P=10. The
  // recorded allgather schedules must carry exactly these message counts.
  for (const auto& [P, native, tuned] :
       {std::tuple{8, 56u, 44u}, std::tuple{10, 90u, 75u}}) {
    fuzz::FuzzCase c;
    c.nranks = P;
    c.nbytes = 4096;
    c.root = 0;
    c.variant = fuzz::Variant::AllgatherRingNative;
    const CaseResult nat = verify_case(c);
    EXPECT_TRUE(nat.ok) << nat.summary();
    EXPECT_EQ(nat.total_sends, native);
    c.variant = fuzz::Variant::AllgatherRingTuned;
    const CaseResult tun = verify_case(c);
    EXPECT_TRUE(tun.ok) << tun.summary();
    EXPECT_EQ(tun.total_sends, tuned);
    EXPECT_EQ(tun.redundant_bytes, 0u);
  }
}

TEST(Verifier, TunedBcastShipsZeroRedundantBytesNativeShipsTheExcess) {
  fuzz::FuzzCase c;
  c.nranks = 8;
  c.nbytes = 524288;
  c.root = 5;
  c.variant = fuzz::Variant::BcastScatterRingTuned;
  const CaseResult tuned = verify_case(c);
  EXPECT_TRUE(tuned.ok) << tuned.summary();
  EXPECT_EQ(tuned.redundant_bytes, 0u);
  EXPECT_EQ(tuned.total_sends, core::scatter_transfers(8, c.nbytes) + 44u);

  c.variant = fuzz::Variant::BcastScatterRingNative;
  const CaseResult native = verify_case(c);
  EXPECT_TRUE(native.ok) << native.summary();
  EXPECT_GT(native.redundant_bytes, 0u);
  EXPECT_EQ(native.total_sends, core::scatter_transfers(8, c.nbytes) + 56u);
}

TEST(Verifier, SabotagedRingPlanIsRejected) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::AllgatherRingTuned;
  c.nranks = 10;
  c.nbytes = 10240;
  const CaseResult res = verify_case(c, VerifyOptions{},
                                     fuzz::Sabotage::RingPlanStepOffByOne);
  EXPECT_FALSE(res.ok);
}

TEST(Verifier, DefaultPlistIsDenseThenSampled) {
  const auto plist = default_plist(4096);
  for (int p = 2; p <= 17; ++p) {
    EXPECT_NE(std::find(plist.begin(), plist.end(), p), plist.end());
  }
  EXPECT_EQ(plist.back(), 4096);
  for (std::size_t i = 1; i < plist.size(); ++i) {
    EXPECT_LT(plist[i - 1], plist[i]);  // sorted, unique
  }
  EXPECT_EQ(default_plist(64).back(), 64);
}

// -------------------------------------------------- reduce-flow hand cases

trace::ReduceFlowOptions whole_buffer_flow(int nranks, std::uint64_t nbytes) {
  trace::ReduceFlowOptions opt;
  opt.nchunks = 1;
  opt.chunk_bytes = nbytes;
  opt.required.assign(static_cast<std::size_t>(nranks), {0, 1});
  return opt;
}

TEST(ReduceFlow, AdjacentPartialExchangeCompletes) {
  // The recursive-doubling step at P=2: both ranks swap their whole-buffer
  // partials; each merge is adjacent and lands exactly at the full circle.
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {send_op(1, t, 256, 0), recv_op(1, t, 256, 0)};
  s.ops[1] = {recv_op(0, t, 256, 0), send_op(0, t, 256, 0)};
  const auto m = trace::match_schedule(s);
  const trace::ReduceFlowReport rep =
      trace::validate_reduce_flow(s, m, whole_buffer_flow(2, 256));
  EXPECT_TRUE(rep.ok) << rep.diagnostics;
  EXPECT_EQ(rep.redundant_bytes, 0u);
  EXPECT_EQ(rep.redundant_msgs, 0u);
}

TEST(ReduceFlow, CompleteOverCompleteIsCountedRedundant) {
  // After the exchange both ranks are complete; a third delivery re-ships a
  // fully reduced chunk to a rank that already holds it. That is priced as
  // redundancy (the generalized paper excess), not an error.
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {send_op(1, t, 256, 0), recv_op(1, t, 256, 0),
              recv_op(1, t, 256, 0)};
  s.ops[1] = {recv_op(0, t, 256, 0), send_op(0, t, 256, 0),
              send_op(0, t, 256, 0)};
  const auto m = trace::match_schedule(s);
  const trace::ReduceFlowReport rep =
      trace::validate_reduce_flow(s, m, whole_buffer_flow(2, 256));
  EXPECT_TRUE(rep.ok) << rep.diagnostics;
  EXPECT_EQ(rep.redundant_bytes, 256u);
  EXPECT_EQ(rep.redundant_msgs, 1u);
}

TEST(ReduceFlow, PartialOverCompleteIsAnError) {
  // Rank 1 ships its lone contribution twice. The first merge completes
  // rank 0; folding the second (still partial) copy in would double-count
  // rank 1's contribution — the validator must reject it.
  Schedule s = two_rank_schedule();
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {recv_op(1, t, 256, 0), recv_op(1, t, 256, 0)};
  s.ops[1] = {send_op(0, t, 256, 0), send_op(0, t, 256, 0)};
  const auto m = trace::match_schedule(s);
  const trace::ReduceFlowReport rep =
      trace::validate_reduce_flow(s, m, whole_buffer_flow(2, 256));
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.diagnostics.find("already complete"), std::string::npos)
      << rep.diagnostics;
}

TEST(ReduceFlow, NonAdjacentPartialMergeIsAnError) {
  // P=4: rank 2's contribution span {2} is not adjacent to rank 0's {0}
  // on the relative circle — folding them would leave a hole at rank 1.
  Schedule s;
  s.nranks = 4;
  s.nbytes = 256;
  s.ops.resize(4);
  const int t = coll::tags::kRingAllgather;
  s.ops[0] = {recv_op(2, t, 256, 0)};
  s.ops[2] = {send_op(0, t, 256, 0)};
  const auto m = trace::match_schedule(s);
  const trace::ReduceFlowReport rep =
      trace::validate_reduce_flow(s, m, whole_buffer_flow(4, 256));
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.diagnostics.find("adjacent"), std::string::npos)
      << rep.diagnostics;
}

TEST(ReduceFlow, MissingRequiredRangeIsAnError) {
  // A schedule with no messages leaves every rank partial; the required
  // ranges demand fully reduced chunks.
  Schedule s = two_rank_schedule();
  const auto m = trace::match_schedule(s);
  const trace::ReduceFlowReport rep =
      trace::validate_reduce_flow(s, m, whole_buffer_flow(2, 256));
  EXPECT_FALSE(rep.ok);
}

// ------------------------------------------------ reduction-family proofs

TEST(Verifier, FamilyAnchorCountsAtP8AndP10) {
  // The generalized analogue of the paper's 56 -> 44 / 90 -> 75 table:
  // blocked reduce_scatter 68 / 105, allreduce 124 -> 112 / 195 -> 180.
  for (const auto& [P, rs, ar_native, ar_tuned] :
       {std::tuple{8, 68u, 124u, 112u}, std::tuple{10, 105u, 195u, 180u}}) {
    fuzz::FuzzCase c;
    c.nranks = P;
    c.nbytes = static_cast<std::uint64_t>(P) * 512;
    c.root = 0;

    c.variant = fuzz::Variant::ReduceScatterBlocks;
    const CaseResult blocks = verify_case(c);
    EXPECT_TRUE(blocks.ok) << blocks.summary();
    EXPECT_EQ(blocks.total_sends, rs);
    EXPECT_EQ(blocks.redundant_bytes, 0u);

    c.variant = fuzz::Variant::AllreduceRsAgNative;
    const CaseResult native = verify_case(c);
    EXPECT_TRUE(native.ok) << native.summary();
    EXPECT_EQ(native.total_sends, ar_native);
    EXPECT_GT(native.redundant_bytes, 0u);  // the enclosed allgather excess

    c.variant = fuzz::Variant::AllreduceRsAgTuned;
    const CaseResult tuned = verify_case(c);
    EXPECT_TRUE(tuned.ok) << tuned.summary();
    EXPECT_EQ(tuned.total_sends, ar_tuned);
    EXPECT_EQ(tuned.redundant_bytes, 0u);
  }
}

TEST(Verifier, DoubleFinalSabotageYieldsRedundancyWitness) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::ReduceScatterBlocks;
  c.nranks = 8;
  c.nbytes = 8192;
  c.root = 3;
  const auto sab = fuzz::Sabotage::ReduceScatterDoubleFinal;
  const CaseResult res = verify_case(c, VerifyOptions{}, sab);
  EXPECT_FALSE(res.ok);
  EXPECT_GT(res.redundant_msgs, 0u);
  bool has_redundancy_witness = false;
  for (const std::string& f : res.failures) {
    if (f.rfind("redundancy", 0) == 0) has_redundancy_witness = true;
  }
  EXPECT_TRUE(has_redundancy_witness) << res.summary();
  // The threaded oracle agrees: values are right, counts are not.
  const fuzz::RunOutcome oracle = fuzz::run_case(c, sab);
  EXPECT_FALSE(oracle.ok);
}

TEST(Verifier, SkewedAllgathervMatchesClosedFormsAndTunedIsWasteFree) {
  for (const std::uint64_t skew : {0x1111u, 0xabcdu, 0x7u}) {
    fuzz::FuzzCase c;
    c.nranks = 10;
    c.nbytes = 12288;
    c.root = 4;
    c.skew_seed = skew;

    c.variant = fuzz::Variant::AllgathervRingNative;
    const TransferExpectation want = expected_transfers(c);
    const CaseResult native = verify_case(c);
    EXPECT_TRUE(native.ok) << native.summary();
    EXPECT_EQ(native.total_sends, 90u);  // message count is size-oblivious
    ASSERT_TRUE(want.redundant_bytes.has_value());
    EXPECT_EQ(native.redundant_bytes, *want.redundant_bytes);
    EXPECT_GT(native.redundant_bytes, 0u);

    c.variant = fuzz::Variant::AllgathervRingTuned;
    const CaseResult tuned = verify_case(c);
    EXPECT_TRUE(tuned.ok) << tuned.summary();
    EXPECT_EQ(tuned.total_sends, 75u);  // same plan as the uniform ring
    EXPECT_EQ(tuned.redundant_bytes, 0u);
  }
}

// ----------------------------------------------- oracle/verifier agreement

TEST(Verifier, AgreesWithThreadedOracleOn150SeededCases) {
  // The verifier re-derives each variant's initial-ownership contract and
  // closed forms independently of the fuzz runner; the seeded random
  // configurations keep the two models honest against each other.
  // (150 draws: the smallest round count covering all 23 variants.)
  fuzz::GeneratorOptions gen;
  gen.max_ranks = 16;
  gen.max_bytes = 64 * 1024;
  gen.faults = false;  // faults perturb timing, not schedules
  std::set<fuzz::Variant> seen;
  for (std::uint64_t i = 0; i < 150; ++i) {
    const fuzz::FuzzCase c = fuzz::sample_case(20260806, i, gen);
    seen.insert(c.variant);
    const fuzz::RunOutcome oracle = fuzz::run_case(c);
    const CaseResult sym = verify_case(c);
    EXPECT_EQ(oracle.ok, sym.ok)
        << describe(c) << "\noracle: " << oracle.detail
        << "\nverifier: " << sym.summary();
  }
  // The agreement sweep must actually exercise the ownership-aware
  // family, not just the bcast/allgather paths.
  for (const auto v :
       {fuzz::Variant::ReduceScatterRing, fuzz::Variant::ReduceScatterBlocks,
        fuzz::Variant::AllreduceRsAgNative, fuzz::Variant::AllreduceRsAgTuned,
        fuzz::Variant::AllreduceRecursiveDoubling,
        fuzz::Variant::AllgathervRingNative,
        fuzz::Variant::AllgathervRingTuned,
        fuzz::Variant::AllgatherBruckHier,
        fuzz::Variant::BcastHier,
        fuzz::Variant::IbcastConcurrent}) {
    EXPECT_TRUE(seen.count(v)) << fuzz::to_string(v);
  }
}

TEST(Verifier, AgreesWithOracleUnderSabotage) {
  // Under the off-by-one ring-plan sabotage both the threaded oracle and
  // the static verifier must reject the tuned variants (and both must
  // stay green where the sabotage does not apply).
  for (const auto v : {fuzz::Variant::AllgatherRingTuned,
                       fuzz::Variant::BcastScatterRingTuned,
                       fuzz::Variant::AllreduceRsAgTuned,
                       fuzz::Variant::AllgathervRingTuned,
                       fuzz::Variant::BcastBinomial}) {
    fuzz::FuzzCase c;
    c.variant = v;
    c.nranks = 12;
    c.nbytes = 12288;
    const auto sab = fuzz::Sabotage::RingPlanStepOffByOne;
    const fuzz::RunOutcome oracle = fuzz::run_case(c, sab);
    const CaseResult sym = verify_case(c, VerifyOptions{}, sab);
    EXPECT_EQ(oracle.ok, sym.ok)
        << fuzz::to_string(v) << ": oracle " << oracle.detail << " vs "
        << sym.summary();
  }
}

// -------------------------------------------------- rotation equivalence

bool has_failure_prefix(const CaseResult& res, const std::string& pre) {
  for (const std::string& f : res.failures) {
    if (f.rfind(pre, 0) == 0) return true;
  }
  return false;
}

TEST(Rotation, ProvenForEveryCheckableVariantAcrossAllRoots) {
  for (const auto v :
       {fuzz::Variant::BcastBinomial, fuzz::Variant::BcastScatterRd,
        fuzz::Variant::BcastScatterRingNative,
        fuzz::Variant::BcastScatterRingTuned, fuzz::Variant::BcastAuto,
        fuzz::Variant::BcastPersistent, fuzz::Variant::AllgatherRingNative,
        fuzz::Variant::AllgatherRingTuned}) {
    const int P = fuzz::fit_ranks(v, 9);  // 9, or 8 for the pow2 variants
    for (int root = 0; root < P; ++root) {
      fuzz::FuzzCase c;
      c.variant = v;
      c.nranks = P;
      c.root = root;
      c.nbytes = 12288;
      c = fuzz::normalize_case(c);
      const CaseResult res = verify_case(c);
      EXPECT_TRUE(res.ok) << res.summary();
      EXPECT_TRUE(res.rotation_checked) << fuzz::to_string(v);
      EXPECT_TRUE(res.rotation_full_graph) << fuzz::to_string(v);
      EXPECT_GT(res.rotation_steps, 0u) << fuzz::to_string(v);
    }
  }
}

TEST(Rotation, SwappedPeerInCachedPlanYieldsMinimalWitness) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::BcastScatterRingTuned;
  c.nranks = 9;
  c.root = 4;
  c.nbytes = 12288;
  c = fuzz::normalize_case(c);
  const trace::Schedule fresh =
      trace::record_schedule(c.nranks, c.nbytes, fuzz::make_rank_body(c));
  fuzz::FuzzCase canonical = c;
  canonical.root = 0;
  coll::Plan plan =
      coll::compile_plan(c.nranks, c.nbytes, 0, "bcast-scatter-ring-tuned",
                         fuzz::make_rank_body(canonical));

  // The honest plan proves equivalent, matchings included.
  const RotationReport good = prove_plan_rotation(plan, c.root, fresh);
  EXPECT_TRUE(good.ok) << good.to_string();
  EXPECT_TRUE(good.full_graph_checked);
  EXPECT_EQ(good.plan_fingerprint, plan.fingerprint());

  // Swap one Send peer: the witness must name the exact rank/step/field.
  bool swapped = false;
  for (auto& steps : plan.steps) {
    for (auto& step : steps) {
      if (step.kind == coll::PlanStep::Kind::Send) {
        step.dst = (step.dst + 1) % plan.nranks;
        swapped = true;
        break;
      }
    }
    if (swapped) break;
  }
  ASSERT_TRUE(swapped);
  const RotationReport bad = prove_plan_rotation(plan, c.root, fresh);
  EXPECT_FALSE(bad.ok);
  ASSERT_TRUE(bad.divergence.has_value());
  EXPECT_GE(bad.divergence->rank, 0);
  EXPECT_GE(bad.divergence->step, 0);
  EXPECT_EQ(bad.divergence->field, "dst");
  EXPECT_NE(bad.plan_fingerprint, good.plan_fingerprint);
}

TEST(Rotation, PlanToScheduleMatchesFreshRecordingEvenUnrotated) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::AllgatherRingTuned;
  c.nranks = 8;
  c.root = 0;
  c.nbytes = 8192;
  c = fuzz::normalize_case(c);
  const trace::Schedule fresh =
      trace::record_schedule(c.nranks, c.nbytes, fuzz::make_rank_body(c));
  const coll::Plan plan =
      coll::compile_plan(c.nranks, c.nbytes, 0, "allgather-ring-tuned",
                         fuzz::make_rank_body(c));
  const trace::Schedule expanded = coll::plan_to_schedule(plan, 0);
  ASSERT_EQ(expanded.nranks, fresh.nranks);
  EXPECT_EQ(expanded.total_ops(), fresh.total_ops());
  EXPECT_EQ(expanded.total_send_bytes(), fresh.total_send_bytes());
  const RotationReport rep = prove_plan_rotation(plan, 0, fresh);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

TEST(Rotation, HundredSeedsAgreeWithByteOracleAcrossAllRoots) {
  // Rotation-equivalence PASS must imply real byte-level agreement: for
  // every sampled broadcast case, executing the root-0 compiled plan
  // rotated at root r on the thread backend must deliver the root's exact
  // pattern to every rank, for every r.
  fuzz::GeneratorOptions gen;
  gen.max_ranks = 10;
  gen.max_bytes = 32 * 1024;
  gen.faults = false;
  int exercised = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    fuzz::FuzzCase c = fuzz::sample_case(20260808, i, gen);
    switch (c.variant) {
      case fuzz::Variant::BcastBinomial:
      case fuzz::Variant::BcastScatterRd:
      case fuzz::Variant::BcastScatterRingNative:
      case fuzz::Variant::BcastScatterRingTuned:
        break;
      default:
        continue;  // not a plan-compilable broadcast draw
    }
    ++exercised;
    fuzz::FuzzCase canonical = c;
    canonical.root = 0;
    canonical = fuzz::normalize_case(canonical);
    const coll::Plan plan =
        coll::compile_plan(canonical.nranks, canonical.nbytes, 0,
                           fuzz::to_string(canonical.variant),
                           fuzz::make_rank_body(canonical));
    for (int root = 0; root < canonical.nranks; ++root) {
      fuzz::FuzzCase rotated = canonical;
      rotated.root = root;
      rotated = fuzz::normalize_case(rotated);
      const CaseResult res = verify_case(rotated);
      ASSERT_TRUE(res.rotation_checked) << describe(rotated);
      ASSERT_TRUE(res.ok) << res.summary();
      const std::uint64_t seed =
          0xB0A5'0000u + i * 131 + static_cast<std::uint64_t>(root);
      mpisim::World world(canonical.nranks);
      world.run([&](mpisim::ThreadComm& comm) {
        std::vector<std::byte> buf(canonical.nbytes);
        if (comm.rank() == root) fill_pattern(buf, seed);
        coll::execute_plan_rank(comm, plan, comm.rank(), buf, root);
        const std::size_t bad = first_pattern_mismatch(buf, seed);
        EXPECT_EQ(bad, buf.size())
            << describe(rotated) << ": rank " << comm.rank()
            << " first mismatch at byte " << bad;
      });
    }
  }
  EXPECT_GE(exercised, 10) << "generator drift: too few broadcast draws";
}

// ------------------------------------------------------- tag-space lint

TEST(TagSpace, RegisteredTagsProveCleanOverFullContextRange) {
  const TagSpaceReport rep = lint_tag_space();
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_EQ(rep.contexts, coll::tags::kMaxCtx);
  EXPECT_EQ(rep.contexts, 2046);
  EXPECT_GE(rep.base_tags, 21);
  EXPECT_GT(rep.checks, 0u);
  // Largest possible remapped tag stays below the barrier/namespace tag.
  EXPECT_GE(rep.max_remapped, 0);
  EXPECT_LT(rep.max_remapped, kMaxUserTag);
  EXPECT_TRUE(rep.witnesses.empty());
}

TEST(TagSpace, PlantedWideTagYieldsWindowCollisionAndRawWitnesses) {
  TagSpaceOptions opt;
  opt.extra_base_tags = {33};
  const TagSpaceReport rep = lint_tag_space(opt);
  EXPECT_FALSE(rep.ok);
  ASSERT_FALSE(rep.witnesses.empty());
  // The planted tag must trip the window check, collide with base tag 1
  // across adjacent contexts (33 + 32c == 1 + 32(c+1)), and alias raw use.
  bool window = false, collision = false, raw = false;
  for (const std::string& w : rep.witnesses) {
    if (w.find("outside the [0, 32) remap window") != std::string::npos) {
      window = true;
    }
    if (w.find("both remap to tag") != std::string::npos) collision = true;
    if (w.find("raw (blocking) use of base tag 33") != std::string::npos) {
      raw = true;
    }
  }
  EXPECT_TRUE(window) << lint_tag_space(opt).to_string();
  EXPECT_TRUE(collision) << lint_tag_space(opt).to_string();
  EXPECT_TRUE(raw) << lint_tag_space(opt).to_string();
}

// ------------------------------------------------ symbolic resource bounds

TEST(Bounds, ClosedFormsDominateGreedyHighWaterPerRank) {
  for (const auto v :
       {fuzz::Variant::BcastBinomial, fuzz::Variant::BcastScatterRingNative,
        fuzz::Variant::BcastScatterRingTuned,
        fuzz::Variant::AllgatherRingNative,
        fuzz::Variant::AllgatherRingTuned}) {
    fuzz::FuzzCase c;
    c.variant = v;
    c.nranks = 9;
    c.root = 4;
    c.nbytes = 12288;
    c = fuzz::normalize_case(c);
    ASSERT_TRUE(eager_bound_checkable(v));
    const trace::Schedule sched =
        trace::record_schedule(c.nranks, c.nbytes, fuzz::make_rank_body(c));
    const trace::MatchResult m = trace::match_schedule(sched);
    for (const std::uint64_t thr : {0ull, 700ull, 1ull << 20}) {
      const HbReport hb = analyze_hb(sched, m, HbOptions{thr});
      ASSERT_FALSE(hb.deadlock);
      const std::vector<std::uint64_t> bound = eager_peak_bounds(c, thr);
      ASSERT_EQ(bound.size(), static_cast<std::size_t>(c.nranks));
      ASSERT_EQ(hb.rank_eager_high_water.size(), bound.size());
      for (int r = 0; r < c.nranks; ++r) {
        EXPECT_LE(hb.rank_eager_high_water[static_cast<std::size_t>(r)],
                  bound[static_cast<std::size_t>(r)])
            << fuzz::to_string(v) << " rank " << r << " threshold " << thr;
      }
    }
  }
}

TEST(Bounds, VerifierGatesBoundsOnCheckableVariants) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::BcastScatterRingTuned;
  c.nranks = 10;
  c.root = 7;
  c.nbytes = 12288;
  c = fuzz::normalize_case(c);
  const CaseResult res = verify_case(c);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_TRUE(res.eager_bounds_checked);
  EXPECT_GT(res.eager_bound_max, 0u);
}

TEST(Bounds, HierShmPoolProvenCleanOnRaggedShape) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::BcastHier;
  c.nranks = 11;
  c.root = 5;
  c.nbytes = 12288;
  c.node_sizes = {4, 4, 3};
  c = fuzz::normalize_case(c);
  const CaseResult res = verify_case(c);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_TRUE(res.shm_checked);
  EXPECT_TRUE(res.eager_bounds_checked);
  // Peak per-node single-copy residency: (largest node size - 1) * nbytes.
  EXPECT_EQ(res.shm_peak_node_bytes, 3u * c.nbytes);

  const trace::Schedule sched =
      trace::record_schedule(c.nranks, c.nbytes, fuzz::make_rank_body(c));
  const ShmPoolReport shm = verify_shm_pool(sched, c.node_sizes, c.root);
  EXPECT_TRUE(shm.ok);
  EXPECT_EQ(shm.fanout_msgs, 8u);  // one per non-leader
  EXPECT_EQ(shm.peak_node_bytes, shm.bound_node_bytes);
}

TEST(Bounds, CrossNodeFanoutMessageYieldsShmWitness) {
  // Hand-built: the "leader" of node 0 ships a kHierFanout message to a
  // rank on node 1 — the simulated shm channel cannot carry it.
  trace::Schedule sched;
  sched.nranks = 4;
  sched.nbytes = 256;
  sched.ops.resize(4);
  sched.ops[0] = {send_op(2, coll::tags::kHierFanout, 256, 0)};
  sched.ops[2] = {recv_op(0, coll::tags::kHierFanout, 256, 0)};
  const ShmPoolReport shm = verify_shm_pool(sched, {2, 2}, 0);
  EXPECT_FALSE(shm.ok);
  EXPECT_EQ(shm.fanout_msgs, 1u);
  bool crossing = false;
  for (const std::string& w : shm.witnesses) {
    if (w.find("crosses nodes") != std::string::npos) crossing = true;
  }
  EXPECT_TRUE(crossing);
}

TEST(Bounds, DoubleFanoutSabotageTripsTheShmPoolProof) {
  fuzz::FuzzCase c;
  c.variant = fuzz::Variant::BcastHier;
  c.nranks = 11;
  c.root = 5;
  c.nbytes = 12288;
  c.node_sizes = {4, 4, 3};
  c = fuzz::normalize_case(c);
  const CaseResult res =
      verify_case(c, VerifyOptions{}, fuzz::Sabotage::HierDoubleFanout);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(has_failure_prefix(res, "bounds: shm")) << res.summary();
}

}  // namespace
}  // namespace bsb::verify
