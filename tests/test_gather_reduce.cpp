// Tests for the gather / scatter / reduce / allreduce / alltoall
// collectives and comm_split —
// the rest of the collective family a downstream user expects next to the
// broadcast, all running on the thread backend with real data.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bsbutil/rng.hpp"
#include "coll/alltoall.hpp"
#include "coll/comm_split.hpp"
#include "coll/gather_binomial.hpp"
#include "coll/reduce.hpp"
#include "coll/scatter.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

namespace bsb {
namespace {

// ----------------------------------------------------------------- gather

struct GatherCase {
  int nranks;
  std::uint64_t block;
  int root;
};

class GatherSweep : public ::testing::TestWithParam<GatherCase> {};

TEST_P(GatherSweep, CollectsAllBlocksInRankOrder) {
  const auto [P, block, root] = GetParam();
  mpisim::World world(P);
  world.run([&, P = P, block = block, root = root](mpisim::ThreadComm& comm) {
    std::vector<std::byte> mine(block);
    fill_pattern(mine, 500 + comm.rank());
    std::vector<std::byte> all(comm.rank() == root ? P * block : 0);
    coll::gather_binomial(comm, mine, all, block, root);
    if (comm.rank() == root) {
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(first_pattern_mismatch(
                      std::span<const std::byte>(all.data() + r * block, block),
                      500 + r),
                  block)
            << "block of rank " << r;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GatherSweep,
    ::testing::Values(GatherCase{1, 16, 0}, GatherCase{2, 8, 1},
                      GatherCase{3, 5, 2}, GatherCase{8, 64, 0},
                      GatherCase{8, 64, 5}, GatherCase{10, 33, 7},
                      GatherCase{13, 1, 12}, GatherCase{16, 0, 3},
                      GatherCase{24, 129, 23}),
    [](const ::testing::TestParamInfo<GatherCase>& info) {
      return "P" + std::to_string(info.param.nranks) + "_b" +
             std::to_string(info.param.block) + "_r" +
             std::to_string(info.param.root);
    });

TEST(Gather, UsesPMinusOneMessages) {
  const int P = 10;
  const auto sched = trace::record_schedule(
      P, 0, [&](Comm& comm, std::span<std::byte>) {
        std::vector<std::byte> mine(8);
        std::vector<std::byte> all(comm.rank() == 3 ? P * 8 : 0);
        coll::gather_binomial(comm, mine, all, 8, 3);
      });
  EXPECT_EQ(sched.total_sends(), static_cast<std::uint64_t>(P - 1));
  EXPECT_NO_THROW(trace::match_schedule(sched));
}

TEST(Gather, RejectsBadArguments) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<std::byte> mine(8), all(16);
    EXPECT_THROW(coll::gather_binomial(comm, mine, all, 4, 0),
                 PreconditionError);  // sendbuf != block
    if (comm.rank() == 0) {
      std::vector<std::byte> small(8);
      EXPECT_THROW(coll::gather_binomial(comm, mine, small, 8, 0),
                   PreconditionError);  // root recvbuf too small
    }
  });
}

// ----------------------------------------------------------------- reduce

TEST(Reduce, SumsDoublesAtRoot) {
  for (int P : {1, 2, 7, 8, 10, 16}) {
    for (int root : {0, P - 1}) {
      mpisim::World world(P);
      world.run([&](mpisim::ThreadComm& comm) {
        std::vector<double> vals(5);
        for (std::size_t i = 0; i < vals.size(); ++i) {
          vals[i] = comm.rank() + static_cast<double>(i) * 0.5;
        }
        std::vector<double> result(comm.rank() == root ? 5 : 0);
        coll::reduce_binomial(comm, std::span<const double>(vals),
                              std::span<double>(result), coll::SumOp{}, root);
        if (comm.rank() == root) {
          const double ranksum = P * (P - 1) / 2.0;
          for (std::size_t i = 0; i < result.size(); ++i) {
            EXPECT_DOUBLE_EQ(result[i],
                             ranksum + P * (static_cast<double>(i) * 0.5))
                << i;
          }
        }
      });
    }
  }
}

TEST(Reduce, MaxAndMinOfInts) {
  const int P = 9;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    // Values arranged so extremes live at non-root ranks.
    std::vector<std::int64_t> v{(comm.rank() + 3) % P, -(comm.rank() * 7)};
    std::vector<std::int64_t> mx(comm.rank() == 0 ? 2 : 0), mn = mx;
    coll::reduce_binomial(comm, std::span<const std::int64_t>(v),
                          std::span<std::int64_t>(mx), coll::MaxOp{}, 0);
    coll::reduce_binomial(comm, std::span<const std::int64_t>(v),
                          std::span<std::int64_t>(mn), coll::MinOp{}, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(mx[0], P - 1);
      EXPECT_EQ(mx[1], 0);
      EXPECT_EQ(mn[0], 0);
      EXPECT_EQ(mn[1], -7 * (P - 1));
    }
  });
}

TEST(Reduce, MessageCountIsPMinusOne) {
  const int P = 12;
  const auto sched = trace::record_schedule(
      P, 0, [&](Comm& comm, std::span<std::byte>) {
        std::vector<double> v{1.0};
        std::vector<double> out(comm.rank() == 0 ? 1 : 0);
        coll::reduce_binomial(comm, std::span<const double>(v),
                              std::span<double>(out), coll::SumOp{}, 0);
      });
  EXPECT_EQ(sched.total_sends(), static_cast<std::uint64_t>(P - 1));
}

// -------------------------------------------------------------- allreduce

TEST(Allreduce, PowerOfTwoRecursiveDoubling) {
  const int P = 8;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<double> v{static_cast<double>(comm.rank()), 1.0};
    coll::allreduce(comm, std::span<double>(v), coll::SumOp{});
    EXPECT_DOUBLE_EQ(v[0], P * (P - 1) / 2.0);
    EXPECT_DOUBLE_EQ(v[1], P);
  });
  // log2(P) rounds, each rank one sendrecv per round.
  EXPECT_EQ(world.total_msgs(), static_cast<std::uint64_t>(P) * 3);
}

TEST(Allreduce, NonPowerOfTwoFallback) {
  for (int P : {1, 3, 9, 10}) {
    mpisim::World world(P);
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::int64_t> v{comm.rank() + 1ll};
      coll::allreduce(comm, std::span<std::int64_t>(v), coll::SumOp{});
      EXPECT_EQ(v[0], static_cast<std::int64_t>(P) * (P + 1) / 2);
    });
  }
}

TEST(Allreduce, MaxAcrossRanks) {
  const int P = 16;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<int> v{(comm.rank() * 5) % P};
    coll::allreduce(comm, std::span<int>(v), coll::MaxOp{});
    EXPECT_EQ(v[0], P - 1);  // 5 is coprime with 16: all residues appear
  });
}

// ---------------------------------------------------------------- scatter

struct ScatterCase {
  int nranks;
  std::uint64_t block;
  int root;
};

class ScatterSweep : public ::testing::TestWithParam<ScatterCase> {};

TEST_P(ScatterSweep, EachRankGetsItsOwnBlock) {
  const auto [P, block, root] = GetParam();
  mpisim::World world(P);
  world.run([&, P = P, block = block, root = root](mpisim::ThreadComm& comm) {
    std::vector<std::byte> all(comm.rank() == root ? P * block : 0);
    if (comm.rank() == root) {
      for (int r = 0; r < P; ++r) {
        fill_pattern(std::span<std::byte>(all.data() + r * block, block),
                     800 + r);
      }
    }
    std::vector<std::byte> mine(block);
    coll::scatter(comm, all, mine, block, root);
    EXPECT_EQ(first_pattern_mismatch(mine, 800 + comm.rank()), block)
        << "rank " << comm.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScatterSweep,
    ::testing::Values(ScatterCase{1, 8, 0}, ScatterCase{2, 16, 1},
                      ScatterCase{3, 7, 2}, ScatterCase{8, 100, 0},
                      ScatterCase{10, 33, 4}, ScatterCase{13, 1, 12},
                      ScatterCase{16, 0, 5}, ScatterCase{24, 64, 17}),
    [](const ::testing::TestParamInfo<ScatterCase>& info) {
      return "P" + std::to_string(info.param.nranks) + "_b" +
             std::to_string(info.param.block) + "_r" +
             std::to_string(info.param.root);
    });

TEST(Scatter, UsesPMinusOneMessages) {
  const int P = 12;
  const auto sched = trace::record_schedule(
      P, 0, [&](Comm& comm, std::span<std::byte>) {
        std::vector<std::byte> all(comm.rank() == 0 ? P * 8 : 0);
        std::vector<std::byte> mine(8);
        coll::scatter(comm, all, mine, 8, 0);
      });
  EXPECT_EQ(sched.total_sends(), static_cast<std::uint64_t>(P - 1));
}

TEST(Scatter, GatherRoundTrip) {
  // scatter then gather back: the root must recover its exact buffer.
  const int P = 9;
  const std::uint64_t block = 50;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> original(P * block), recovered(P * block);
    if (comm.rank() == 2) fill_pattern(original, 12345);
    std::vector<std::byte> mine(block);
    coll::scatter(comm, original, mine, block, 2);
    coll::gather_binomial(comm, mine, recovered, block, 2);
    if (comm.rank() == 2) {
      EXPECT_EQ(first_pattern_mismatch(recovered, 12345), recovered.size());
    }
  });
}

// ---------------------------------------------------------------- alltoall

TEST(Alltoall, ExchangesAllBlocks) {
  for (int P : {1, 2, 4, 5, 8, 11}) {
    const std::uint64_t block = 24;
    mpisim::World world(P);
    world.run([&](mpisim::ThreadComm& comm) {
      const int me = comm.rank();
      std::vector<std::byte> out(P * block), in(P * block);
      for (int d = 0; d < P; ++d) {
        // Block for destination d, tagged by (me, d).
        fill_pattern(std::span<std::byte>(out.data() + d * block, block),
                     static_cast<std::uint64_t>(me) * 100 + d);
      }
      coll::alltoall_pairwise(comm, out, in, block);
      for (int s = 0; s < P; ++s) {
        EXPECT_EQ(first_pattern_mismatch(
                      std::span<const std::byte>(in.data() + s * block, block),
                      static_cast<std::uint64_t>(s) * 100 + me),
                  block)
            << "P=" << P << " rank " << me << " block from " << s;
      }
    });
  }
}

TEST(Alltoall, MessageCountIsPTimesPMinusOne) {
  const int P = 6;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> out(P * 8), in(P * 8);
    coll::alltoall_pairwise(comm, out, in, 8);
  });
  EXPECT_EQ(world.total_msgs(), static_cast<std::uint64_t>(P) * (P - 1));
}

TEST(Alltoall, RejectsWrongBufferSizes) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<std::byte> small(8), right(16);
    EXPECT_THROW(coll::alltoall_pairwise(comm, small, right, 8),
                 PreconditionError);
    EXPECT_THROW(coll::alltoall_pairwise(comm, right, small, 8),
                 PreconditionError);
  });
}

// ------------------------------------------------------------- comm_split

TEST(CommSplit, GroupsByColorOrdersByKey) {
  const int P = 9;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    const int color = comm.rank() % 3;
    const int key = -comm.rank();  // reverse order inside each group
    auto sub = coll::comm_split(comm, color, key, /*base_context=*/10);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 3);
    // Keys are descending with rank, so subgroup rank 0 is the HIGHEST
    // parent rank of the color class.
    EXPECT_EQ(sub->parent_rank(0), 6 + color);
    EXPECT_EQ(sub->parent_rank(2), color);
    // The groups work: broadcast inside each.
    std::vector<std::byte> buf(100);
    if (sub->rank() == 0) fill_pattern(buf, 40 + color);
    coll::bcast_binomial(*sub, buf, 0);
    EXPECT_EQ(first_pattern_mismatch(buf, 40 + color), buf.size());
  });
}

TEST(CommSplit, UndefinedColorOptsOut) {
  const int P = 5;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    const int color = comm.rank() == 4 ? coll::kUndefinedColor : 0;
    auto sub = coll::comm_split(comm, color, 0, 1);
    if (comm.rank() == 4) {
      EXPECT_FALSE(sub.has_value());
    } else {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 4);
      EXPECT_EQ(sub->rank(), comm.rank());
    }
  });
}

TEST(CommSplit, StableOrderOnEqualKeys) {
  const int P = 6;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, 0, /*key=*/0, 1);
    ASSERT_TRUE(sub.has_value());
    // Equal keys: parent rank order, as MPI specifies.
    EXPECT_EQ(sub->rank(), comm.rank());
  });
}

TEST(CommSplit, ConcurrentDisjointGroupsCommunicate) {
  const int P = 8;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, comm.rank() / 4, comm.rank(), 1);
    ASSERT_TRUE(sub.has_value());
    // Both groups run a ring exchange with the SAME user tag concurrently;
    // context separation must keep them isolated.
    const int n = sub->size();
    std::byte out{static_cast<unsigned char>(comm.rank())};
    std::byte in{};
    sub->sendrecv({&out, 1}, (sub->rank() + 1) % n, 4, {&in, 1},
                  (sub->rank() + n - 1) % n, 4);
    const int expect_parent =
        sub->parent_rank((sub->rank() + n - 1) % n);
    EXPECT_EQ(std::to_integer<int>(in), expect_parent);
  });
}

TEST(CommSplit, RejectsBadArguments) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    EXPECT_THROW(coll::comm_split(comm, -5, 0, 1), PreconditionError);
    EXPECT_THROW(coll::comm_split(comm, 0, 0, 0), PreconditionError);
  });
}

}  // namespace
}  // namespace bsb
