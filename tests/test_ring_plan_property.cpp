// Property tests for the paper's Listing-1 mask loop (compute_ring_plan),
// swept across every process count P = 2..1024 (powers of two, primes,
// everything between): the skipped-send/skipped-receive pairing invariant
// that makes the tuned ring deadlock-free, and the exact agreement of the
// per-rank closed forms with tuned_ring_transfers.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/ring_plan.hpp"
#include "core/transfer_analysis.hpp"

namespace bsb::core {
namespace {

constexpr int kMaxP = 1024;

// Rank r skips its SEND on link (r -> r+1) at ring step i iff it is
// receive-only and the step falls in its special phase; its right
// neighbour skips the matching RECEIVE iff it is send-only in ITS special
// phase. The schedule stays matched (and deadlock-free) only when the two
// decisions agree on every link at every step.
TEST(RingPlanProperty, SkippedSendPairsWithSkippedReceiveOnSameLink) {
  for (int P = 2; P <= kMaxP; ++P) {
    for (int r = 0; r < P; ++r) {
      const RingPlan plan = compute_ring_plan(r, P);
      const RingPlan right = compute_ring_plan((r + 1) % P, P);
      ASSERT_GE(plan.step, 1) << "P=" << P << " rel=" << r;
      ASSERT_LE(plan.step, P) << "P=" << P << " rel=" << r;
      // A send-skipping rank's right neighbour must skip receives over the
      // SAME number of trailing steps — the pairing invariant. Plans with
      // step == 1 have an empty special phase and constrain nothing (e.g.
      // rel=1 at P=3 is recv_only with step 1).
      if (plan.recv_only && plan.step > 1) {
        ASSERT_FALSE(right.recv_only)
            << "P=" << P << " rel=" << r
            << ": send-skipper's right neighbour also skips sends";
        ASSERT_EQ(plan.step, right.step)
            << "P=" << P << " rel=" << r
            << ": unequal special phases on one ring link";
      }
      // And symmetrically: a receive-skipping rank (send-only, step > 1)
      // must be the right neighbour of a matching send-skipper.
      if (!plan.recv_only && plan.step > 1) {
        const RingPlan left = compute_ring_plan((r + P - 1) % P, P);
        ASSERT_TRUE(left.recv_only)
            << "P=" << P << " rel=" << r
            << ": receive-skipper's left neighbour keeps sending";
        ASSERT_EQ(left.step, plan.step) << "P=" << P << " rel=" << r;
      }
    }
  }
}

// Exhaustive per-step agreement for the small/medium counts (the large-P
// structure is covered by the step-equality form above).
TEST(RingPlanProperty, PerStepAgreementUpTo128) {
  for (int P = 2; P <= 128; ++P) {
    for (int r = 0; r < P; ++r) {
      const RingPlan plan = compute_ring_plan(r, P);
      const RingPlan right = compute_ring_plan((r + 1) % P, P);
      for (int i = 1; i < P; ++i) {
        const bool send_skipped = plan.recv_only && is_special_step(plan, i, P);
        const bool recv_skipped =
            !right.recv_only && is_special_step(right, i, P);
        ASSERT_EQ(send_skipped, recv_skipped)
            << "P=" << P << " rel=" << r << " step=" << i;
      }
    }
  }
}

// The root never receives; the rank to its left never sends.
TEST(RingPlanProperty, RootAndItsLeftNeighbourAreFullySpecial) {
  for (int P = 2; P <= kMaxP; ++P) {
    const RingPlan root = compute_ring_plan(0, P);
    ASSERT_FALSE(root.recv_only) << "P=" << P;
    ASSERT_EQ(tuned_recvs(root, P), 0) << "P=" << P;
    const RingPlan left_of_root = compute_ring_plan(P - 1, P);
    ASSERT_TRUE(left_of_root.recv_only) << "P=" << P;
    ASSERT_EQ(tuned_sends(left_of_root, P), 0) << "P=" << P;
  }
}

// Summed per-rank closed forms equal tuned_ring_transfers EXACTLY: total
// sends == total receives == native P(P-1) minus the pairing savings.
TEST(RingPlanProperty, SummedSendsAndRecvsEqualTunedRingTransfers) {
  for (int P = 2; P <= kMaxP; ++P) {
    std::uint64_t sends = 0, recvs = 0;
    for (int r = 0; r < P; ++r) {
      const RingPlan plan = compute_ring_plan(r, P);
      sends += static_cast<std::uint64_t>(tuned_sends(plan, P));
      recvs += static_cast<std::uint64_t>(tuned_recvs(plan, P));
    }
    ASSERT_EQ(sends, recvs) << "P=" << P;
    ASSERT_EQ(sends, tuned_ring_transfers(P)) << "P=" << P;
    ASSERT_EQ(native_ring_transfers(P) - sends, tuned_ring_savings(P))
        << "P=" << P;
  }
}

// The paper's §IV in-text arithmetic.
TEST(RingPlanProperty, PaperTransferCounts) {
  EXPECT_EQ(native_ring_transfers(8), 56u);
  EXPECT_EQ(tuned_ring_transfers(8), 44u);
  EXPECT_EQ(native_ring_transfers(10), 90u);
  EXPECT_EQ(tuned_ring_transfers(10), 75u);
}

}  // namespace
}  // namespace bsb::core
