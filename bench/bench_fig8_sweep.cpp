// Figure 8 reproduction: broadcast bandwidth vs. message size at np=129
// (non-power-of-two), sweeping from the medium-message threshold (12288 B)
// to 2560000 B. Both algorithms take the scatter-ring path everywhere in
// this range (npof2 medium + long), as on Cray with its rendezvous protocol
// the paper notes no protocol-switch kinks are expected.
//
// Paper reference point: tuned above native across the sweep, up to ~30%.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int P = 129;

  std::vector<std::uint64_t> sizes{12288,  24576,  49152,   98304,  196608,
                                   393216, 786432, 1572864, 2560000};
  if (opt.quick) sizes = {12288, 196608, 2560000};

  std::cout << "Fig. 8: medium->long broadcast bandwidth at np=" << P
            << " (non-power-of-two)\n"
            << "cluster: Hornet-like, " << netsim::CostModel::hornet().describe()
            << "\n\n";

  std::vector<Comparison> rows;
  for (std::uint64_t nbytes : sizes) {
    const int iters = opt.quick ? 3 : (nbytes <= 100000 ? 12 : 5);
    netsim::SimSpec spec{Topology::hornet(P), netsim::CostModel::hornet(), iters};
    rows.push_back(compare_ring_bcasts(P, nbytes, 0, spec));
  }

  const std::string title = "Fig 8: np=129, 12288..2560000 bytes";
  print_bandwidth_comparison(title, rows);
  print_bandwidth_plot(title, rows);
  maybe_write_csv(opt, "fig8_np129", rows, P);
  return 0;
}
