// Host-processing savings — the paper's second mechanism (§IV): "in the
// case of intra-node, the point-to-point operation is implemented via
// memory copying, which is considered to involve the cpu-interference and
// buffer memory allocation, which can be minimized in the tuned ring
// allgather algorithm."
//
// This bench measures exactly that: total CPU-busy seconds (per-message
// overheads + eager injection/copy-out) across all ranks for one
// broadcast, native vs tuned, plus the bytes that never crossed the wire.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  std::cout << "Host processing (CPU-busy seconds summed over ranks) per "
               "broadcast, native vs tuned\n"
            << "cluster: Hornet-like; eager chunks so copies land on CPUs\n\n";

  Table t({"np", "msg size", "cpu native", "cpu tuned", "cpu saved",
           "bytes native", "bytes tuned"});
  const std::vector<int> procs = opt.quick ? std::vector<int>{10}
                                           : std::vector<int>{10, 24, 48, 96};
  for (int P : procs) {
    for (std::uint64_t nbytes : {std::uint64_t{12288}, std::uint64_t{98304}}) {
      netsim::SimSpec spec{Topology::hornet(P), netsim::CostModel::hornet(), 1};
      const Comparison c = compare_ring_bcasts(P, nbytes, 0, spec);
      t.add({std::to_string(P), format_bytes(nbytes),
             format_time(c.native.replay.total_cpu_busy),
             format_time(c.tuned.replay.total_cpu_busy),
             format_percent(1.0 - c.tuned.replay.total_cpu_busy /
                                      c.native.replay.total_cpu_busy),
             format_bytes(c.native.traffic.bytes),
             format_bytes(c.tuned.traffic.bytes)});
    }
  }
  std::cout << t.render()
            << "\nReading: the tuned ring removes both the wire bytes AND "
               "the send/receive CPU work of every skipped transfer — the "
               "host-processing relief the paper argues for in §IV.\n";
  return 0;
}
