// Ablation: the full broadcast algorithm shoot-out behind MPICH3's selector
// — binomial tree, scatter+recursive-doubling, scatter+ring (native and
// tuned), pipelined ring, and the SMP-aware 3-phase broadcast with either
// ring variant inside — across the message-size spectrum. This reproduces
// the rationale for the 12288 / 524288-byte switch points and shows where
// the paper's tuned ring sits in the design space.
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/bcast_ring_pipelined.hpp"
#include "coll/bcast_scatter_rd.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "coll/bcast_smp.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int P = 48;  // two Hornet nodes; power of two avoided on purpose? 48 = npof2
  const Topology topo = Topology::hornet(P);

  struct Algo {
    const char* name;
    std::function<void(Comm&, std::span<std::byte>, int)> run;
  };
  const std::vector<Algo> algos{
      {"binomial", [](Comm& c, std::span<std::byte> b, int r) {
         coll::bcast_binomial(c, b, r);
       }},
      {"scatter+ring(native)", [](Comm& c, std::span<std::byte> b, int r) {
         coll::bcast_scatter_ring_native(c, b, r);
       }},
      {"scatter+ring(tuned)", [](Comm& c, std::span<std::byte> b, int r) {
         core::bcast_scatter_ring_tuned(c, b, r);
       }},
      {"pipelined-ring(64KiB)", [](Comm& c, std::span<std::byte> b, int r) {
         coll::bcast_ring_pipelined(c, b, r, 65536);
       }},
      {"smp(native-inter)", [&](Comm& c, std::span<std::byte> b, int r) {
         coll::bcast_smp(c, b, r, topo,
                         [](Comm& l, std::span<std::byte> lb, int lr) {
                           coll::bcast_scatter_ring_native(l, lb, lr);
                         });
       }},
      {"smp(tuned-inter)", [&](Comm& c, std::span<std::byte> b, int r) {
         coll::bcast_smp(c, b, r, topo,
                         [](Comm& l, std::span<std::byte> lb, int lr) {
                           core::bcast_scatter_ring_tuned(l, lb, lr);
                         });
       }},
  };

  std::vector<std::uint64_t> sizes{1024,   12288,   65536,   262144,
                                   524288, 1048576, 4194304};
  if (opt.quick) sizes = {12288, 524288};

  std::cout << "Ablation: broadcast algorithm shoot-out, np=" << P << " ("
            << topo.describe() << ")\nbandwidth in MB/s; best per size marked *\n\n";

  std::vector<std::string> header{"msg size"};
  for (const Algo& a : algos) header.push_back(a.name);
  Table t(std::move(header));

  for (std::uint64_t nbytes : sizes) {
    const int iters = opt.quick ? 3 : (nbytes <= 65536 ? 20 : 6);
    netsim::SimSpec spec{topo, netsim::CostModel::hornet(), iters};
    std::vector<double> bw;
    for (const Algo& a : algos) {
      bw.push_back(netsim::simulate_program(
                       P, nbytes,
                       [&](Comm& comm, std::span<std::byte> buffer) {
                         a.run(comm, buffer, 0);
                       },
                       spec)
                       .bandwidth);
    }
    const double best = *std::max_element(bw.begin(), bw.end());
    std::vector<std::string> row{format_bytes(nbytes)};
    for (double v : bw) {
      row.push_back(format_mbps(v) + (v == best ? "*" : ""));
    }
    t.add(std::move(row));
  }
  std::cout << t.render()
            << "\nReading: binomial wins short messages (MPICH's 12288-byte "
               "cut), the ring family wins long ones, and the tuned ring "
               "dominates its native counterpart everywhere it applies.\n";
  return 0;
}
