// Microbenchmarks of the thread-backed runtime: p2p latency (eager and
// rendezvous), sendrecv exchange, barrier, and world spin-up — the
// substrate costs under everything else.
//
// Two modes:
//  * default: google-benchmark microbenchmarks (wall-clock tables);
//  * --json <path> [--quick]: the fixed regression suite — eager and
//    rendezvous ping-pong, sendrecv ring, and the tuned-vs-native
//    scatter-ring broadcast at P in {4,8,10,16} — written as a
//    bsb-bench-v1 JSON artifact (ops/sec, p50/p99 latency) that
//    scripts/bench_compare.py validates and gates on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

using namespace bsb;

namespace {

// ------------------------------------------------ google-benchmark mode

void BM_WorldSpawnJoin(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::World world(P);
    world.run([](mpisim::ThreadComm&) {});
  }
}
BENCHMARK(BM_WorldSpawnJoin)->Arg(2)->Arg(8)->Arg(16);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kRounds = 64;  // messages per run() (reported time / run)
  mpisim::World world(2);
  for (auto _ : state) {
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < kRounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(buf, 1, 0);
          comm.recv(buf, 1, 1);
        } else {
          comm.recv(buf, 0, 0);
          comm.send(buf, 0, 1);
        }
      }
    });
  }
}
BENCHMARK(BM_PingPong)->Arg(0)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_SendrecvRing(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  mpisim::World world(P);
  for (auto _ : state) {
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> out(4096), in(4096);
      const int right = (comm.rank() + 1) % P;
      const int left = (comm.rank() + P - 1) % P;
      for (int step = 0; step < 16; ++step) {
        comm.sendrecv(out, right, 0, in, left, 0);
      }
    });
  }
}
BENCHMARK(BM_SendrecvRing)->Arg(4)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  mpisim::World world(P);
  for (auto _ : state) {
    world.run([](mpisim::ThreadComm& comm) {
      for (int i = 0; i < 64; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16);

// ----------------------------------------------------------- --json mode

/// Round-trip ping-pong between ranks 0 and 1; one sample = one round
/// trip (send + matching recv each way), timed on rank 0.
bench::BenchMetric measure_pingpong(const std::string& name, std::size_t bytes,
                                    std::size_t eager_threshold, int rounds) {
  mpisim::WorldConfig cfg;
  cfg.eager_threshold = eager_threshold;
  cfg.watchdog_seconds = 120;
  mpisim::World world(2, cfg);
  std::vector<double> samples;
  samples.reserve(rounds);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(bytes);
    comm.barrier();
    for (int i = 0; i < rounds; ++i) {
      if (comm.rank() == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        comm.send(buf, 1, 0);
        comm.recv(buf, 1, 1);
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(std::chrono::duration<double>(t1 - t0).count());
      } else {
        comm.recv(buf, 0, 0);
        comm.send(buf, 0, 1);
      }
    }
  });
  return bench::summarize_samples(name, samples, bytes, 2);
}

/// Full-duplex neighbour exchange around a P-ring; one sample = one
/// sendrecv step, timed on rank 0 (all ranks step together).
bench::BenchMetric measure_sendrecv_ring(const std::string& name, int P,
                                         std::size_t bytes, int steps) {
  mpisim::WorldConfig cfg;
  cfg.watchdog_seconds = 120;
  mpisim::World world(P, cfg);
  std::vector<double> samples;
  samples.reserve(steps);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> out(bytes), in(bytes);
    const int right = (comm.rank() + 1) % P;
    const int left = (comm.rank() + P - 1) % P;
    comm.barrier();
    for (int step = 0; step < steps; ++step) {
      if (comm.rank() == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        comm.sendrecv(out, right, 0, in, left, 0);
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(std::chrono::duration<double>(t1 - t0).count());
      } else {
        comm.sendrecv(out, right, 0, in, left, 0);
      }
    }
  });
  return bench::summarize_samples(name, samples, bytes, P);
}

/// Scatter-ring broadcast (native or the paper's tuned variant) from rank
/// 0; one sample = one broadcast, timed on the root. Same iteration
/// structure for both variants so the pair is directly comparable.
bench::BenchMetric measure_bcast(const std::string& name, int P,
                                 std::size_t bytes, bool tuned, int iters) {
  mpisim::WorldConfig cfg;
  cfg.eager_threshold = 8192;  // chunks of bytes/P ride rendezvous
  cfg.watchdog_seconds = 120;
  mpisim::World world(P, cfg);
  std::vector<double> samples;
  samples.reserve(iters);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(bytes, std::byte{1});
    comm.barrier();
    for (int i = 0; i < iters; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      if (tuned) {
        core::bcast_scatter_ring_tuned(comm, buf, 0);
      } else {
        coll::bcast_scatter_ring_native(comm, buf, 0);
      }
      const auto t1 = std::chrono::steady_clock::now();
      if (comm.rank() == 0) {
        samples.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
    }
  });
  return bench::summarize_samples(name, samples, bytes, P);
}

int run_json_suite(const bench::Options& opt) {
  const bool q = opt.quick;
  std::vector<bench::BenchMetric> metrics;

  // Warm up the thread pool / allocator before the eager number that the
  // regression gate keys on.
  measure_pingpong("warmup", 1024, 65536, q ? 50 : 2000);

  metrics.push_back(measure_pingpong("pingpong_eager_1KiB", 1024, 65536,
                                     q ? 500 : 20000));
  metrics.push_back(measure_pingpong("pingpong_rendezvous_256KiB", 256 * 1024,
                                     4096, q ? 100 : 2000));
  metrics.push_back(
      measure_sendrecv_ring("sendrecv_ring_P8_4KiB", 8, 4096, q ? 200 : 5000));
  for (int P : {4, 8, 10, 16}) {
    const std::size_t bytes = 256 * 1024;
    const int iters = q ? 5 : 100;
    metrics.push_back(measure_bcast(
        "bcast_native_P" + std::to_string(P) + "_256KiB", P, bytes, false, iters));
    metrics.push_back(measure_bcast(
        "bcast_tuned_P" + std::to_string(P) + "_256KiB", P, bytes, true, iters));
  }

  bench::write_bench_json(opt.json_path, "micro_runtime", metrics, q);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --json selects the fixed regression suite; anything else goes to
  // google-benchmark untouched (so --benchmark_filter etc. still work).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_json_suite(bench::parse_options(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
