// google-benchmark microbenchmarks of the thread-backed runtime: p2p
// latency (eager and rendezvous), sendrecv exchange, barrier, and world
// spin-up — the substrate costs under everything else.
#include <benchmark/benchmark.h>

#include <vector>

#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

using namespace bsb;

namespace {

void BM_WorldSpawnJoin(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::World world(P);
    world.run([](mpisim::ThreadComm&) {});
  }
}
BENCHMARK(BM_WorldSpawnJoin)->Arg(2)->Arg(8)->Arg(16);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kRounds = 64;  // messages per run() (reported time / run)
  mpisim::World world(2);
  for (auto _ : state) {
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < kRounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(buf, 1, 0);
          comm.recv(buf, 1, 1);
        } else {
          comm.recv(buf, 0, 0);
          comm.send(buf, 0, 1);
        }
      }
    });
  }
}
BENCHMARK(BM_PingPong)->Arg(0)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_SendrecvRing(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  mpisim::World world(P);
  for (auto _ : state) {
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> out(4096), in(4096);
      const int right = (comm.rank() + 1) % P;
      const int left = (comm.rank() + P - 1) % P;
      for (int step = 0; step < 16; ++step) {
        comm.sendrecv(out, right, 0, in, left, 0);
      }
    });
  }
}
BENCHMARK(BM_SendrecvRing)->Arg(4)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  mpisim::World world(P);
  for (auto _ : state) {
    world.run([](mpisim::ThreadComm& comm) {
      for (int i = 0; i < 64; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
