// Reproduces the paper's §IV in-text transfer arithmetic and schematic
// figures:
//  * message-transfer counts of the native (enclosed) vs tuned
//    (non-enclosed) ring allgather — 56 vs 44 at P=8, 90 vs 75 at P=10,
//    with the saving growing in P;
//  * the binomial scatter trees of Figures 1 and 2 (chunk ownership);
//  * the per-step send/receive event tables of Figures 3, 4 and 5.
// Counts come from BOTH the closed-form analysis and recorded schedules of
// the actual implementations; the bench asserts they agree.
#include <cstdlib>
#include <iostream>

#include "bsbutil/table.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/reduce_ops.hpp"
#include "coll/reduce_scatter_ring.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "core/allgather_ring_tuned.hpp"
#include "core/allreduce_rsag.hpp"
#include "core/transfer_analysis.hpp"
#include "trace/event_table.hpp"
#include "trace/record.hpp"

using namespace bsb;

namespace {

trace::Schedule record_ring(int P, bool tuned) {
  const std::uint64_t nbytes = 16 * static_cast<std::uint64_t>(P);
  return trace::record_schedule(
      P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
        const ChunkLayout layout(nbytes, P);
        if (tuned) {
          core::allgather_ring_tuned(comm, buffer, 0, layout);
        } else {
          coll::allgather_ring_native(comm, buffer, 0, layout);
        }
      });
}

void print_scatter_tree(int P) {
  std::cout << "Binomial scatter ownership after the scatter phase, P=" << P
            << " (paper Fig. " << (P == 8 ? 1 : 2) << "):\n";
  Table t({"relative rank", "owned chunks", "block size"});
  const ChunkLayout layout(static_cast<std::uint64_t>(P) * 16, P);
  for (int rel = 0; rel < P; ++rel) {
    const int span = coll::scatter_subtree_span(rel, P);
    std::string chunks = std::to_string(rel);
    if (span > 1) chunks += ".." + std::to_string(rel + span - 1);
    t.add({std::to_string(rel), chunks, std::to_string(span)});
  }
  std::cout << t.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::cout << "Ring-allgather message transfers: native P(P-1) vs tuned "
               "(paper §IV)\n\n";

  std::vector<int> sizes{2,  3,  4,  8,   9,   10,  16,  17,  33,
                         64, 65, 128, 129, 256, 512, 1024};
  if (quick) sizes = {8, 10, 129};
  std::cout << core::transfer_table(sizes) << "\n";

  // Cross-check the closed form against recorded schedules of the real
  // implementations (cheap; skip the largest in quick mode).
  for (int P : quick ? std::vector<int>{8, 10} : std::vector<int>{8, 10, 64, 129}) {
    const auto native = record_ring(P, false);
    const auto tuned = record_ring(P, true);
    const bool ok_native = native.total_sends() == core::native_ring_transfers(P);
    const bool ok_tuned = tuned.total_sends() == core::tuned_ring_transfers(P);
    std::cout << "P=" << P << ": recorded native " << native.total_sends()
              << ", tuned " << tuned.total_sends()
              << (ok_native && ok_tuned ? "  [matches closed form]"
                                        : "  [MISMATCH!]")
              << "\n";
    if (!ok_native || !ok_tuned) return 1;
  }
  std::cout << "\n";

  // The generalized family: the same non-enclosed trick priced for the
  // ownership-aware reduce_scatter and the rs+ag allreduce.
  std::cout << "Ownership-aware reduction family transfers (generalized "
               "closed forms)\n\n";
  std::cout << core::reduce_family_table(quick ? std::vector<int>{8, 10, 129}
                                               : sizes)
            << "\n";
  for (int P : {8, 10}) {
    const std::uint64_t nbytes = 8 * static_cast<std::uint64_t>(P);
    const auto rs = trace::record_schedule(
        P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
          coll::reduce_scatter_blocks_ring(comm, buffer, 0, coll::RedOp::Sum,
                                           coll::RedDtype::F64);
        });
    const auto ar = trace::record_schedule(
        P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
          core::allreduce_rsag_tuned(comm, buffer, 0, coll::RedOp::Sum,
                                     coll::RedDtype::F64);
        });
    const bool ok_rs =
        rs.total_sends() == core::blocked_reduce_scatter_transfers(P);
    const bool ok_ar =
        ar.total_sends() == core::allreduce_rsag_tuned_transfers(P);
    std::cout << "P=" << P << ": recorded blocked reduce_scatter "
              << rs.total_sends() << ", tuned allreduce " << ar.total_sends()
              << (ok_rs && ok_ar ? "  [matches closed form]" : "  [MISMATCH!]")
              << "\n";
    if (!ok_rs || !ok_ar) return 1;
  }
  std::cout << "\n";

  print_scatter_tree(8);
  print_scatter_tree(10);

  for (int P : {8, 10}) {
    std::cout << "Native (enclosed) ring events, P=" << P
              << " (paper Fig. 3):\n"
              << trace::render_event_table(record_ring(P, false), 16) << "\n";
    std::cout << "Tuned (non-enclosed) ring events, P=" << P << " (paper Fig. "
              << (P == 8 ? 4 : 5) << "):\n"
              << trace::render_event_table(record_ring(P, true), 16) << "\n";
  }
  return 0;
}
