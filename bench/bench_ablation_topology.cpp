// Ablation: node shape and rank placement. The paper's evaluation fixes a
// 24-core Hornet node with block placement; this bench varies cores/node
// (the intra/inter traffic mix) and placement (block vs cyclic) to show
// where the tuned ring's advantage comes from on each level.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "trace/counters.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int P = 64;
  const std::uint64_t nbytes = 1 << 20;
  const int iters = opt.quick ? 2 : 8;

  std::cout << "Ablation: topology vs tuned-ring advantage (np=" << P << ", "
            << format_bytes(nbytes) << ", iters=" << iters << ")\n\n";

  Table t({"cores/node", "placement", "inter msgs (tuned)", "native MB/s",
           "tuned MB/s", "improvement"});
  std::vector<int> cores{1, 8, 16, 24, 32, 64};
  if (opt.quick) cores = {8, 24};
  for (int c : cores) {
    for (Placement p : {Placement::Block, Placement::Cyclic}) {
      if (c == 64 && p == Placement::Cyclic) continue;  // single node: same
      const Topology topo(P, c, p);
      netsim::SimSpec spec{topo, netsim::CostModel::hornet(), iters};
      const Comparison cmp = compare_ring_bcasts(P, nbytes, 0, spec);
      t.add({std::to_string(c), p == Placement::Block ? "block" : "cyclic",
             std::to_string(cmp.tuned.traffic.inter_msgs),
             format_mbps(cmp.native.bandwidth), format_mbps(cmp.tuned.bandwidth),
             format_percent(cmp.improvement())});
    }
  }
  std::cout << t.render()
            << "\nReading: block placement keeps most ring links inside a "
               "node (few inter-node messages); cyclic placement turns every "
               "link inter-node and the NIC dominates both variants.\n";
  return 0;
}
