// Figure 6 reproduction: broadcast bandwidth vs. message size for LONG
// messages with power-of-two process counts (16, 64, 256) on a Hornet-like
// cluster (24-core nodes, block placement), comparing MPI_Bcast_native
// (binomial scatter + enclosed ring allgather) against MPI_Bcast_opt
// (binomial scatter + the paper's tuned ring allgather).
//
// Paper reference points: up to 12% improvement at np=16 (intra-node only),
// up to 41% at np=64, up to 20% at np=256; peak bandwidth 10-16% better.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  std::cout << "Fig. 6: long-message broadcast bandwidth, power-of-two ranks\n"
            << "cluster: Hornet-like, " << netsim::CostModel::hornet().describe()
            << "\n\n";

  for (int P : {16, 64, 256}) {
    netsim::SimSpec spec{Topology::hornet(P), netsim::CostModel::hornet(),
                         /*iters=*/opt.quick ? 2 : 4};
    std::vector<Comparison> rows;
    for (std::uint64_t nbytes : fig6_sizes(opt.quick)) {
      rows.push_back(compare_ring_bcasts(P, nbytes, /*root=*/0, spec));
    }
    const std::string title =
        "Fig 6(" + std::string(P == 16 ? "a" : P == 64 ? "b" : "c") +
        "): np=" + std::to_string(P) + " (" + spec.topo.describe() + ")";
    print_bandwidth_comparison(title, rows);
    print_bandwidth_plot(title, rows);
    maybe_write_csv(opt, "fig6_np" + std::to_string(P), rows, P);
  }
  return 0;
}
