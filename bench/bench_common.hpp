// Shared plumbing for the figure-reproduction benchmark harnesses: run the
// native vs. tuned broadcasts through the cluster simulator, print
// paper-style tables and ASCII plots, and optionally dump CSVs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "comm/topology.hpp"
#include "core/bcast.hpp"
#include "netsim/sim.hpp"

namespace bsb::bench {

struct Options {
  /// Shrink sweeps and iteration counts (smoke-testing in CI).
  bool quick = false;
  /// Directory for CSV result files; empty = no CSVs.
  std::string csv_dir;
  /// Path for a machine-readable BENCH_*.json artifact; empty = no JSON.
  std::string json_path;
};

/// Parse --quick, --csv-dir <dir> and --json <path>; exits with usage on
/// unknown flags.
Options parse_options(int argc, char** argv);

/// One measured series for the BENCH_*.json artifact (schema documented in
/// EXPERIMENTS.md and validated by scripts/bench_compare.py).
struct BenchMetric {
  std::string name;       // stable identifier, e.g. "pingpong_eager_1KiB"
  double ops_per_sec = 0; // completed operations per second
  double p50_us = 0;      // median per-operation latency, microseconds
  double p99_us = 0;      // 99th-percentile per-operation latency
  std::uint64_t samples = 0;  // number of timed operations
  std::uint64_t bytes = 0;    // payload bytes per operation (0 = n/a)
  int ranks = 0;              // world size (0 = n/a)
};

/// Compute ops/sec and latency percentiles from per-operation second
/// samples. `samples` is consumed (sorted in place).
BenchMetric summarize_samples(std::string name, std::vector<double>& samples,
                              std::uint64_t bytes, int ranks);

/// Write metrics as a bsb-bench-v1 JSON artifact. Creates parent
/// directories; throws bsb::Error if the file cannot be written.
void write_bench_json(const std::string& path, const std::string& bench,
                      const std::vector<BenchMetric>& metrics, bool quick);

/// Run one bcast algorithm through the simulator.
netsim::SimResult simulate_algorithm(core::BcastAlgorithm algo, int nranks,
                                     std::uint64_t nbytes, int root,
                                     const netsim::SimSpec& spec);

struct Comparison {
  std::uint64_t nbytes = 0;
  netsim::SimResult native;
  netsim::SimResult tuned;

  double improvement() const {
    return native.bandwidth > 0 ? tuned.bandwidth / native.bandwidth - 1.0 : 0.0;
  }
  double speedup() const {
    return native.throughput > 0 ? tuned.throughput / native.throughput : 0.0;
  }
};

/// Native vs tuned scatter-ring-allgather broadcast at one design point.
Comparison compare_ring_bcasts(int nranks, std::uint64_t nbytes, int root,
                               const netsim::SimSpec& spec);

/// Paper-style bandwidth table (MB/s base-2, as in the figures) plus the
/// peak-bandwidth summary sentence used in §V-A.
void print_bandwidth_comparison(const std::string& title,
                                const std::vector<Comparison>& rows);

/// Two-series log-log ASCII plot of bandwidth vs message size.
void print_bandwidth_plot(const std::string& title,
                          const std::vector<Comparison>& rows);

/// Dump rows to <csv_dir>/<name>.csv when csv_dir is set.
void maybe_write_csv(const Options& opt, const std::string& name,
                     const std::vector<Comparison>& rows, int nranks);

/// Long-message sizes 2^19 .. 2^25 (Fig. 6's x-axis).
std::vector<std::uint64_t> fig6_sizes(bool quick);

}  // namespace bsb::bench
