// google-benchmark microbenchmarks of the analysis/simulation pipeline:
// ring-plan computation, schedule recording, matching, coverage validation,
// discrete-event replay, and the fluid max-min solver. These bound how big
// a sweep the figure harnesses can afford.
#include <benchmark/benchmark.h>

#include "coll/bcast_scatter_ring_native.hpp"
#include "comm/topology.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "core/ring_plan.hpp"
#include "core/transfer_analysis.hpp"
#include "netsim/fluid.hpp"
#include "netsim/replay.hpp"
#include "trace/coverage.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

using namespace bsb;

namespace {

void BM_RingPlan(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  int rel = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_ring_plan(rel, P));
    rel = (rel + 1) % P;
  }
}
BENCHMARK(BM_RingPlan)->Arg(8)->Arg(129)->Arg(4096);

void BM_TunedSavingsClosedForm(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::tuned_ring_savings(P));
  }
}
BENCHMARK(BM_TunedSavingsClosedForm)->Arg(129)->Arg(1024);

void BM_RecordTunedBcast(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const std::uint64_t nbytes = 1 << 20;
  for (auto _ : state) {
    auto sched = trace::record_schedule(
        P, nbytes, [](Comm& comm, std::span<std::byte> buffer) {
          core::bcast_scatter_ring_tuned(comm, buffer, 0);
        });
    benchmark::DoNotOptimize(sched);
  }
}
BENCHMARK(BM_RecordTunedBcast)->Arg(16)->Arg(129);

void BM_MatchSchedule(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const auto sched = trace::record_schedule(
      P, 1 << 20, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_scatter_ring_native(comm, buffer, 0);
      });
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::match_schedule(sched));
  }
}
BENCHMARK(BM_MatchSchedule)->Arg(16)->Arg(129);

void BM_CoverageValidate(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const auto sched = trace::record_schedule(
      P, 1 << 20, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::validate_coverage(sched, m, 0));
  }
}
BENCHMARK(BM_CoverageValidate)->Arg(16)->Arg(64);

void BM_ReplayTunedBcast(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const auto sched = trace::record_schedule(
      P, 1 << 20, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const Topology topo = Topology::hornet(P);
  const netsim::CostModel cost = netsim::CostModel::hornet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::replay_schedule(sched, m, topo, cost));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.msgs.size()));
}
BENCHMARK(BM_ReplayTunedBcast)->Arg(16)->Arg(64)->Arg(129);

void BM_FluidMaxMin(benchmark::State& state) {
  const int nflows = static_cast<int>(state.range(0));
  netsim::FluidNetwork net(std::vector<double>(32, 1e10));
  for (int i = 0; i < nflows; ++i) {
    net.add_flow(1e6, {i % 32, 16 + (i / 2) % 16}, 8e9);
  }
  for (auto _ : state) {
    net.recompute_rates();
  }
}
BENCHMARK(BM_FluidMaxMin)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
