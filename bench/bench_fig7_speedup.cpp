// Figure 7 reproduction: throughput speedup (broadcasts per second) of
// MPI_Bcast_opt over MPI_Bcast_native for NON-POWER-OF-TWO process counts
// (9, 17, 33, 65, 129) at the paper's three probe sizes — 12288 B (the
// medium-message lower edge), 524287 B (medium upper edge) and 1048576 B
// (long). The measurement loop repeats the broadcast back-to-back after one
// barrier, exactly like the paper's harness, which is what lets eager
// (small-chunk) broadcasts pipeline across iterations.
//
// Paper reference points: >2x for 12288 B at 9/17/33 procs, dropping toward
// 1x at 65+; roughly flat 1.0-1.5x curves for the two larger sizes.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/ascii_plot.hpp"
#include "bsbutil/csv.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  const std::vector<int> procs = opt.quick ? std::vector<int>{9, 17}
                                           : std::vector<int>{9, 17, 33, 65, 129};
  const std::vector<std::uint64_t> sizes{12288, 524287, 1048576};

  std::cout << "Fig. 7: throughput speedup of MPI_Bcast_opt over "
               "MPI_Bcast_native, non-power-of-two ranks\n"
            << "cluster: Hornet-like, " << netsim::CostModel::hornet().describe()
            << "\n\n";

  Table t({"np", "ms=12288", "ms=524287", "ms=1048576"});
  std::vector<Series> series;
  const char markers[] = {'o', '+', 'x'};
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    series.push_back(Series{"ms=" + std::to_string(sizes[s]), markers[s], {}, {}});
  }

  for (int P : procs) {
    std::vector<std::string> row{std::to_string(P)};
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const std::uint64_t nbytes = sizes[s];
      // Small messages iterate more (they are cheap and pipelining matters);
      // long messages fewer (they are expensive to simulate).
      const int iters = opt.quick ? 4 : (nbytes <= 16384 ? 30 : 8);
      netsim::SimSpec spec{Topology::hornet(P), netsim::CostModel::hornet(), iters};
      const Comparison c = compare_ring_bcasts(P, nbytes, 0, spec);
      row.push_back(format_fixed(c.speedup(), 2) + "x");
      series[s].x.push_back(P);
      series[s].y.push_back(c.speedup());
    }
    t.add(std::move(row));
  }

  std::cout << t.render() << "\n";
  PlotOptions popt;
  popt.title = "Fig 7: throughput speedup (tuned / native)";
  popt.x_label = "number of processes";
  popt.y_label = "speedup";
  popt.log2_x = true;
  popt.log2_y = false;
  std::cout << render_plot(series, popt);

  if (!opt.csv_dir.empty()) {
    CsvWriter csv(opt.csv_dir + "/fig7_speedup.csv");
    csv.row({"nranks", "nbytes", "speedup"});
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      for (std::size_t i = 0; i < series[s].x.size(); ++i) {
        csv.row({format_fixed(series[s].x[i], 0), std::to_string(sizes[s]),
                 format_fixed(series[s].y[i], 4)});
      }
    }
    std::cout << "(csv written: " << opt.csv_dir << "/fig7_speedup.csv)\n";
  }
  return 0;
}
