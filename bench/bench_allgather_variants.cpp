// The allgather design space the paper's contribution lives in: standalone
// equal-block allgather via the enclosed ring, Bruck's log-step algorithm,
// and neighbor exchange, simulated across block sizes on a Hornet-like
// node pair. (The tuned ring is a BROADCAST-side optimization — it needs
// the binomial scatter's surplus blocks — so the broadcast shoot-out lives
// in bench_ablation_algorithms; this bench positions the substrate ring
// against its standalone competitors.)
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "coll/allgather_bruck.hpp"
#include "coll/allgather_neighbor_exchange.hpp"
#include "coll/allgather_ring_native.hpp"
#include "comm/chunks.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int P = 48;  // even and npof2: all three variants apply
  const Topology topo = Topology::hornet(P);

  struct Algo {
    const char* name;
    std::function<void(Comm&, std::span<std::byte>, std::uint64_t)> run;
  };
  const std::vector<Algo> algos{
      {"ring (P-1 steps)",
       [&](Comm& c, std::span<std::byte> b, std::uint64_t block) {
         // Standalone ring: rank r owns block r — exactly the enclosed ring
         // over a trivial (everyone-owns-one-chunk) layout.
         coll::allgather_ring_native(c, b, 0, ChunkLayout(P * block, P));
       }},
      {"bruck (log P steps)",
       [](Comm& c, std::span<std::byte> b, std::uint64_t block) {
         coll::allgather_bruck(c, b, block);
       }},
      {"neighbor-exchange (P/2 steps)",
       [](Comm& c, std::span<std::byte> b, std::uint64_t block) {
         coll::allgather_neighbor_exchange(c, b, block);
       }},
  };

  std::vector<std::uint64_t> blocks{256, 2048, 16384, 131072};
  if (opt.quick) blocks = {2048};

  std::cout << "Standalone allgather variants, np=" << P << " ("
            << topo.describe() << ")\ntime per allgather; best per row marked *\n\n";

  std::vector<std::string> header{"block size", "total data"};
  for (const Algo& a : algos) header.push_back(a.name);
  Table t(std::move(header));

  for (std::uint64_t block : blocks) {
    const int iters = opt.quick ? 3 : 8;
    netsim::SimSpec spec{topo, netsim::CostModel::hornet(), iters};
    std::vector<double> secs;
    for (const Algo& a : algos) {
      const auto r = netsim::simulate_program(
          P, P * block,
          [&](Comm& comm, std::span<std::byte> buffer) {
            a.run(comm, buffer, block);
          },
          spec);
      secs.push_back(r.seconds / iters);
    }
    const double best = *std::min_element(secs.begin(), secs.end());
    std::vector<std::string> row{format_bytes(block),
                                 format_bytes(P * block)};
    for (double v : secs) row.push_back(format_time(v) + (v == best ? "*" : ""));
    t.add(std::move(row));
  }
  std::cout << t.render()
            << "\nReading: small blocks favour the log-step and half-step "
               "algorithms (fewer messages); the ring catches up for large "
               "blocks where bandwidth, not message count, dominates — the "
               "same trade the paper's broadcast path navigates.\n";
  return 0;
}
