// Real-data measurement on the thread backend: wall-clock time of the
// native vs tuned broadcast with actual memory movement inside one
// process — the closest this reproduction gets to the paper's np=16
// single-node case (Fig. 6(a)), where the tuned ring saves real memcpy
// work and buffer traffic. Absolute numbers depend on the host; the point
// is the native/tuned ordering with genuinely moved bytes.
#include <chrono>
#include <iostream>
#include <vector>

#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

using namespace bsb;

namespace {

double run_once(int P, std::uint64_t nbytes, int iters, bool tuned) {
  mpisim::WorldConfig cfg;
  cfg.eager_threshold = 8192;
  cfg.watchdog_seconds = 120;
  mpisim::World world(P, cfg);
  double seconds = 0;
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes, std::byte{1});
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      if (tuned) {
        core::bcast_scatter_ring_tuned(comm, buf, 0);
      } else {
        coll::bcast_scatter_ring_native(comm, buf, 0);
      }
    }
    comm.barrier();
    if (comm.rank() == 0) {
      seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
    }
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int P = 8;
  const int iters = quick ? 3 : 10;

  std::cout << "Thread backend (real data movement), np=" << P
            << ", scatter-ring broadcast, " << iters << " iterations\n"
            << "note: single-machine wall clock; threads share this host's "
               "cores, so treat ratios, not absolutes\n\n";

  Table t({"msg size", "native", "tuned", "tuned/native"});
  std::vector<std::uint64_t> sizes{65536, 524288, 4194304};
  if (quick) sizes = {65536};
  for (std::uint64_t nbytes : sizes) {
    run_once(P, nbytes, 1, false);  // warm up allocators/threads
    const double tn = run_once(P, nbytes, iters, false);
    const double tt = run_once(P, nbytes, iters, true);
    t.add({format_bytes(nbytes), format_time(tn), format_time(tt),
           format_fixed(tn > 0 ? tt / tn : 0, 3)});
  }
  std::cout << t.render();
  return 0;
}
