// The paper evaluated on two systems and reports that "the results from
// both Hornet and Laki basically deliver the same bandwidth performance
// trend" (§V). This bench repeats the Fig. 6(b)-style sweep under the
// Laki-like cost model (8-core Nehalem nodes, InfiniBand-class NIC,
// 12288-byte eager cutoff) and prints both machines side by side.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int P = 64;
  const int iters = opt.quick ? 2 : 4;

  std::cout << "Hornet vs Laki cost models, np=" << P
            << " long-message broadcast (paper: same trend on both)\n"
            << "hornet: " << netsim::CostModel::hornet().describe() << "\n"
            << "laki  : " << netsim::CostModel::laki().describe() << "\n\n";

  Table t({"msg size", "hornet native", "hornet tuned", "hornet impr",
           "laki native", "laki tuned", "laki impr"});
  bool same_trend = true;
  for (std::uint64_t nbytes : fig6_sizes(opt.quick)) {
    netsim::SimSpec hornet{Topology::hornet(P), netsim::CostModel::hornet(), iters};
    netsim::SimSpec laki{Topology(P, 8, Placement::Block),
                         netsim::CostModel::laki(), iters};
    const Comparison h = compare_ring_bcasts(P, nbytes, 0, hornet);
    const Comparison l = compare_ring_bcasts(P, nbytes, 0, laki);
    t.add({format_bytes(nbytes), format_mbps(h.native.bandwidth),
           format_mbps(h.tuned.bandwidth), format_percent(h.improvement()),
           format_mbps(l.native.bandwidth), format_mbps(l.tuned.bandwidth),
           format_percent(l.improvement())});
    // "Same trend" = the tuned variant wins on both machines.
    same_trend = same_trend && h.improvement() >= -0.001 && l.improvement() >= -0.001;
  }
  std::cout << t.render() << "\nsame trend on both machines: "
            << (same_trend ? "YES (tuned >= native everywhere)" : "NO") << "\n";
  return same_trend ? 0 : 1;
}
