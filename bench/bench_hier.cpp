// Hierarchical-broadcast benchmark: flat tuned scatter-ring vs the
// node-aware hierarchical broadcast (leader ring + single-copy shm
// fan-out) at 24 cores per node. Every flavour is recorded once and
// replayed under netsim with the XPMEM-style shm channel priced as its
// own resource (CostModel::shm_tag = the hier fan-out tag), so the
// comparison captures exactly what the hierarchy buys: quadratic ring
// traffic over L leaders instead of P ranks, with the intra-node copies
// moved off the membus/NIC path.
//
// The replay is deterministic, so the checked-in results/BENCH_hier.json
// baseline regenerates bit-for-bit and is gated with bench_compare.py
// --require-all. The harness itself FAILs (exit 1) unless hier tuned
// beats flat tuned for every >= 512 KiB size at >= 2 nodes — the PR's
// headline claim — and unless the flow attribution shows exactly P - L
// shm messages (and zero for the flat baseline).
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/hier/bcast_hier.hpp"
#include "coll/hier/topology.hpp"
#include "coll/tags.hpp"
#include "comm/topology.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "core/transfer_analysis.hpp"
#include "netsim/costmodel.hpp"
#include "netsim/replay.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

namespace bsb::bench {
namespace {

constexpr int kCoresPerNode = 24;
constexpr std::uint64_t kHeadlineBytes = 512 * 1024;

struct Flavor {
  const char* name;        // stable metric prefix
  bool hier = false;       // hierarchical vs flat
  bool tuned = true;       // ring flavour (flat baseline is always tuned)
};

struct Measured {
  netsim::ReplayResult replay;
  BenchMetric metric;
};

/// Record one flavour at (nodes x 24, nbytes) and replay it on the matching
/// block-placed topology. Root 1 keeps the leader-election path non-trivial
/// (the root leads its node instead of the lowest rank).
Measured measure(const Flavor& f, int nodes, std::uint64_t nbytes) {
  const int P = nodes * kCoresPerNode;
  const int root = 1;
  const hier::Topology htopo = hier::Topology::uniform(P, kCoresPerNode);
  const trace::Schedule sched = trace::record_schedule(
      P, nbytes, [&](Comm& comm, std::span<std::byte> buf) {
        if (!f.hier) {
          core::bcast_scatter_ring_tuned(comm, buf, root);
        } else if (f.tuned) {
          core::bcast_hier_tuned(comm, buf, root, htopo);
        } else {
          core::bcast_hier_native(comm, buf, root, htopo);
        }
      });
  const trace::MatchResult match = trace::match_schedule(sched);

  const Topology topo(P, kCoresPerNode, Placement::Block);
  netsim::CostModel cost = netsim::CostModel::hornet();
  cost.shm_tag = coll::tags::kHierFanout;

  Measured out;
  out.replay = netsim::replay_schedule(sched, match, topo, cost);
  const double latency = out.replay.makespan;
  out.metric.name = std::string(f.name) + "_" + std::to_string(nodes) + "x" +
                    std::to_string(kCoresPerNode) + "_" +
                    std::to_string(nbytes / 1024) + "KiB";
  out.metric.ops_per_sec = latency > 0 ? 1.0 / latency : 0.0;
  out.metric.p50_us = latency * 1e6;
  out.metric.p99_us = latency * 1e6;
  out.metric.samples = 1;
  out.metric.bytes = nbytes;
  out.metric.ranks = P;
  return out;
}

int run_bench(const Options& opt) {
  std::vector<int> node_counts{2, 4};
  if (!opt.quick) node_counts.push_back(8);
  const std::vector<std::uint64_t> sizes{64 * 1024, 256 * 1024, 512 * 1024,
                                         1024 * 1024, 2048 * 1024};
  const Flavor flavors[] = {
      {"flat_tuned", /*hier=*/false, /*tuned=*/true},
      {"hier_native", /*hier=*/true, /*tuned=*/false},
      {"hier_tuned", /*hier=*/true, /*tuned=*/true},
  };

  std::vector<BenchMetric> metrics;
  int failures = 0;
  for (const int nodes : node_counts) {
    const int P = nodes * kCoresPerNode;
    std::cout << "== hierarchical broadcast (" << nodes << " nodes x "
              << kCoresPerNode << " cores = " << P << " ranks) ==\n";
    std::printf("%10s  %12s  %12s  %12s  %8s  %14s\n", "size", "flat us",
                "hier nat us", "hier tun us", "speedup", "hier shm msgs");
    for (const std::uint64_t nbytes : sizes) {
      Measured flat, hnat, htun;
      for (const Flavor& f : flavors) {
        Measured m = measure(f, nodes, nbytes);
        (f.hier ? (f.tuned ? htun : hnat) : flat) = m;
        metrics.push_back(m.metric);
      }
      const double speedup =
          htun.replay.makespan > 0 ? flat.replay.makespan / htun.replay.makespan
                                   : 0.0;
      std::printf("%7llu Ki  %12.1f  %12.1f  %12.1f  %7.2fx  %8llu of %d\n",
                  static_cast<unsigned long long>(nbytes / 1024),
                  flat.replay.makespan * 1e6, hnat.replay.makespan * 1e6,
                  htun.replay.makespan * 1e6, speedup,
                  static_cast<unsigned long long>(htun.replay.shm_messages),
                  P - nodes);

      // Flow attribution: the hier fan-out is exactly one shm message per
      // non-leader; the flat baseline must never touch the shm channel.
      if (flat.replay.shm_messages != 0) {
        std::fprintf(stderr, "FAIL: flat baseline used the shm channel\n");
        ++failures;
      }
      for (const Measured* m : {&hnat, &htun}) {
        if (m->replay.shm_messages != static_cast<std::uint64_t>(P - nodes)) {
          std::fprintf(stderr,
                       "FAIL: hier shm fan-out %llu messages, expected %d\n",
                       static_cast<unsigned long long>(m->replay.shm_messages),
                       P - nodes);
          ++failures;
        }
      }
      if (htun.replay.messages !=
          core::hier_bcast_transfers(P, nodes, nbytes, /*tuned=*/true)) {
        std::fprintf(stderr, "FAIL: hier tuned replay message count off\n");
        ++failures;
      }
      // The headline claim: at >= 2 nodes and >= 512 KiB the hierarchy must
      // beat the flat tuned ring outright — wherever the flat ring actually
      // runs in its long-message regime. Once nbytes / P drops under the
      // eager threshold the flat ring's chunks go free-at-post and pipeline
      // (a regime real stacks route to different algorithms entirely), so
      // the crossover size grows with P; at 2 x 24 every >= 512 KiB point
      // qualifies.
      const bool flat_rendezvous =
          nbytes / static_cast<std::uint64_t>(P) >
          netsim::CostModel::hornet().eager_threshold;
      if (nbytes >= kHeadlineBytes && flat_rendezvous &&
          htun.replay.makespan >= flat.replay.makespan) {
        std::fprintf(stderr,
                     "FAIL: hier tuned %.1f us not faster than flat tuned "
                     "%.1f us at %llu KiB x %d nodes\n",
                     htun.replay.makespan * 1e6, flat.replay.makespan * 1e6,
                     static_cast<unsigned long long>(nbytes / 1024), nodes);
        ++failures;
      }
      // And the non-enclosed leader ring must not lose to the enclosed one.
      if (htun.replay.makespan > hnat.replay.makespan * 1.0001) {
        std::fprintf(stderr,
                     "FAIL: hier tuned %.1f us slower than hier native "
                     "%.1f us at %llu KiB x %d nodes\n",
                     htun.replay.makespan * 1e6, hnat.replay.makespan * 1e6,
                     static_cast<unsigned long long>(nbytes / 1024), nodes);
        ++failures;
      }
    }
  }

  if (!opt.json_path.empty()) {
    write_bench_json(opt.json_path, "hier", metrics, opt.quick);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bsb::bench

int main(int argc, char** argv) {
  const bsb::bench::Options opt = bsb::bench::parse_options(argc, argv);
  return bsb::bench::run_bench(opt);
}
