#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bsbutil/ascii_plot.hpp"
#include "bsbutil/csv.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "bsbutil/units.hpp"

namespace bsb::bench {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv-dir" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--csv-dir <dir>]\n", argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

netsim::SimResult simulate_algorithm(core::BcastAlgorithm algo, int nranks,
                                     std::uint64_t nbytes, int root,
                                     const netsim::SimSpec& spec) {
  return netsim::simulate_program(
      nranks, nbytes,
      [&](Comm& comm, std::span<std::byte> buffer) {
        core::run_bcast_algorithm(algo, comm, buffer, root);
      },
      spec);
}

Comparison compare_ring_bcasts(int nranks, std::uint64_t nbytes, int root,
                               const netsim::SimSpec& spec) {
  Comparison c;
  c.nbytes = nbytes;
  c.native = simulate_algorithm(core::BcastAlgorithm::ScatterRingNative, nranks,
                                nbytes, root, spec);
  c.tuned = simulate_algorithm(core::BcastAlgorithm::ScatterRingTuned, nranks,
                               nbytes, root, spec);
  return c;
}

void print_bandwidth_comparison(const std::string& title,
                                const std::vector<Comparison>& rows) {
  Table t({"msg size", "native MB/s", "tuned MB/s", "improvement",
           "msgs native", "msgs tuned"});
  double peak_native = 0, peak_tuned = 0, best = 0;
  for (const Comparison& c : rows) {
    t.add({format_bytes(c.nbytes), format_mbps(c.native.bandwidth),
           format_mbps(c.tuned.bandwidth), format_percent(c.improvement()),
           std::to_string(c.native.traffic.msgs),
           std::to_string(c.tuned.traffic.msgs)});
    peak_native = std::max(peak_native, c.native.bandwidth);
    peak_tuned = std::max(peak_tuned, c.tuned.bandwidth);
    best = std::max(best, c.improvement());
  }
  std::cout << "== " << title << " ==\n"
            << t.render() << "peak: native " << format_mbps(peak_native)
            << " MB/s, tuned " << format_mbps(peak_tuned) << " MB/s ("
            << format_percent(peak_tuned / peak_native - 1.0)
            << "); best per-size improvement " << format_percent(best) << "\n\n";
}

void print_bandwidth_plot(const std::string& title,
                          const std::vector<Comparison>& rows) {
  Series native{"MPI_Bcast_native", 'o', {}, {}};
  Series tuned{"MPI_Bcast_opt", '*', {}, {}};
  for (const Comparison& c : rows) {
    native.x.push_back(static_cast<double>(c.nbytes));
    native.y.push_back(c.native.bandwidth / static_cast<double>(MiB));
    tuned.x.push_back(static_cast<double>(c.nbytes));
    tuned.y.push_back(c.tuned.bandwidth / static_cast<double>(MiB));
  }
  PlotOptions opt;
  opt.title = title;
  opt.x_label = "message size (bytes)";
  opt.y_label = "bandwidth (MB/s)";
  std::cout << render_plot({native, tuned}, opt) << "\n";
}

void maybe_write_csv(const Options& opt, const std::string& name,
                     const std::vector<Comparison>& rows, int nranks) {
  if (opt.csv_dir.empty()) return;
  CsvWriter csv(opt.csv_dir + "/" + name + ".csv");
  csv.row({"nranks", "nbytes", "native_mbps", "tuned_mbps", "improvement",
           "native_msgs", "tuned_msgs", "native_inter_msgs", "tuned_inter_msgs"});
  for (const Comparison& c : rows) {
    csv.row({std::to_string(nranks), std::to_string(c.nbytes),
             format_mbps(c.native.bandwidth, 3), format_mbps(c.tuned.bandwidth, 3),
             format_fixed(c.improvement(), 5),
             std::to_string(c.native.traffic.msgs),
             std::to_string(c.tuned.traffic.msgs),
             std::to_string(c.native.traffic.inter_msgs),
             std::to_string(c.tuned.traffic.inter_msgs)});
  }
  std::cout << "(csv written: " << opt.csv_dir << "/" << name << ".csv)\n";
}

std::vector<std::uint64_t> fig6_sizes(bool quick) {
  std::vector<std::uint64_t> sizes;
  for (int e = 19; e <= 25; e += quick ? 3 : 1) {
    sizes.push_back(std::uint64_t{1} << e);
  }
  return sizes;
}

}  // namespace bsb::bench
