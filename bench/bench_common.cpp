#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bsbutil/ascii_plot.hpp"
#include "bsbutil/csv.hpp"
#include "bsbutil/error.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "bsbutil/units.hpp"

namespace bsb::bench {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv-dir" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--csv-dir <dir>] [--json <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

netsim::SimResult simulate_algorithm(core::BcastAlgorithm algo, int nranks,
                                     std::uint64_t nbytes, int root,
                                     const netsim::SimSpec& spec) {
  return netsim::simulate_program(
      nranks, nbytes,
      [&](Comm& comm, std::span<std::byte> buffer) {
        core::run_bcast_algorithm(algo, comm, buffer, root);
      },
      spec);
}

Comparison compare_ring_bcasts(int nranks, std::uint64_t nbytes, int root,
                               const netsim::SimSpec& spec) {
  Comparison c;
  c.nbytes = nbytes;
  c.native = simulate_algorithm(core::BcastAlgorithm::ScatterRingNative, nranks,
                                nbytes, root, spec);
  c.tuned = simulate_algorithm(core::BcastAlgorithm::ScatterRingTuned, nranks,
                               nbytes, root, spec);
  return c;
}

void print_bandwidth_comparison(const std::string& title,
                                const std::vector<Comparison>& rows) {
  Table t({"msg size", "native MB/s", "tuned MB/s", "improvement",
           "msgs native", "msgs tuned"});
  double peak_native = 0, peak_tuned = 0, best = 0;
  for (const Comparison& c : rows) {
    t.add({format_bytes(c.nbytes), format_mbps(c.native.bandwidth),
           format_mbps(c.tuned.bandwidth), format_percent(c.improvement()),
           std::to_string(c.native.traffic.msgs),
           std::to_string(c.tuned.traffic.msgs)});
    peak_native = std::max(peak_native, c.native.bandwidth);
    peak_tuned = std::max(peak_tuned, c.tuned.bandwidth);
    best = std::max(best, c.improvement());
  }
  // An empty sweep (or an all-zero-bandwidth one) must not divide by zero
  // and print a NaN/inf banner.
  const double peak_gain = peak_native > 0 ? peak_tuned / peak_native - 1.0 : 0.0;
  std::cout << "== " << title << " ==\n"
            << t.render() << "peak: native " << format_mbps(peak_native)
            << " MB/s, tuned " << format_mbps(peak_tuned) << " MB/s ("
            << format_percent(peak_gain)
            << "); best per-size improvement " << format_percent(best) << "\n\n";
}

void print_bandwidth_plot(const std::string& title,
                          const std::vector<Comparison>& rows) {
  Series native{"MPI_Bcast_native", 'o', {}, {}};
  Series tuned{"MPI_Bcast_opt", '*', {}, {}};
  for (const Comparison& c : rows) {
    native.x.push_back(static_cast<double>(c.nbytes));
    native.y.push_back(c.native.bandwidth / static_cast<double>(MiB));
    tuned.x.push_back(static_cast<double>(c.nbytes));
    tuned.y.push_back(c.tuned.bandwidth / static_cast<double>(MiB));
  }
  PlotOptions opt;
  opt.title = title;
  opt.x_label = "message size (bytes)";
  opt.y_label = "bandwidth (MB/s)";
  std::cout << render_plot({native, tuned}, opt) << "\n";
}

void maybe_write_csv(const Options& opt, const std::string& name,
                     const std::vector<Comparison>& rows, int nranks) {
  if (opt.csv_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(opt.csv_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create --csv-dir %s: %s\n",
                 opt.csv_dir.c_str(), ec.message().c_str());
    std::exit(1);
  }
  CsvWriter csv(opt.csv_dir + "/" + name + ".csv");
  csv.row({"nranks", "nbytes", "native_mbps", "tuned_mbps", "improvement",
           "native_msgs", "tuned_msgs", "native_inter_msgs", "tuned_inter_msgs"});
  for (const Comparison& c : rows) {
    csv.row({std::to_string(nranks), std::to_string(c.nbytes),
             format_mbps(c.native.bandwidth, 3), format_mbps(c.tuned.bandwidth, 3),
             format_fixed(c.improvement(), 5),
             std::to_string(c.native.traffic.msgs),
             std::to_string(c.tuned.traffic.msgs),
             std::to_string(c.native.traffic.inter_msgs),
             std::to_string(c.tuned.traffic.inter_msgs)});
  }
  std::cout << "(csv written: " << opt.csv_dir << "/" << name << ".csv)\n";
}

namespace {

double quantile_seconds(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BenchMetric summarize_samples(std::string name, std::vector<double>& samples,
                              std::uint64_t bytes, int ranks) {
  BenchMetric m;
  m.name = std::move(name);
  m.bytes = bytes;
  m.ranks = ranks;
  m.samples = samples.size();
  double total = 0;
  for (double s : samples) total += s;
  m.ops_per_sec = total > 0 ? static_cast<double>(samples.size()) / total : 0.0;
  std::sort(samples.begin(), samples.end());
  m.p50_us = quantile_seconds(samples, 0.50) * 1e6;
  m.p99_us = quantile_seconds(samples, 0.99) * 1e6;
  return m;
}

void write_bench_json(const std::string& path, const std::string& bench,
                      const std::vector<BenchMetric>& metrics, bool quick) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      throw Error("bench json: cannot create directory " +
                  p.parent_path().string() + ": " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("bench json: cannot open " + path + " for writing");
  out << "{\n"
      << "  \"schema\": \"bsb-bench-v1\",\n"
      << "  \"bench\": \"" << bench << "\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const BenchMetric& m = metrics[i];
    out << "    {\"name\": \"" << m.name << "\", \"ops_per_sec\": "
        << json_number(m.ops_per_sec) << ", \"p50_us\": " << json_number(m.p50_us)
        << ", \"p99_us\": " << json_number(m.p99_us) << ", \"samples\": "
        << m.samples << ", \"bytes\": " << m.bytes << ", \"ranks\": " << m.ranks
        << "}" << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) throw Error("bench json: write to " + path + " failed");
  std::cout << "(json written: " << path << ")\n";
}

std::vector<std::uint64_t> fig6_sizes(bool quick) {
  std::vector<std::uint64_t> sizes;
  for (int e = 19; e <= 25; e += quick ? 3 : 1) {
    sizes.push_back(std::uint64_t{1} << e);
  }
  return sizes;
}

}  // namespace bsb::bench
