// Ablation: how the runtime's eager/rendezvous threshold shapes the tuned
// ring's advantage. The paper attributes its gains to saved transfers; our
// simulator shows the saving is worth the most when chunks ride the eager
// path (send-only ranks stream ahead and iterations pipeline), and least
// when every chunk rendezvous-synchronizes the ring. This locates the
// crossover the design depends on.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const int P = 65;
  const std::uint64_t nbytes = 524287;  // chunk ~= 8065 B
  const int iters = opt.quick ? 4 : 16;

  std::cout << "Ablation: eager threshold vs tuned-ring advantage (np=" << P
            << ", " << nbytes << " B, chunk ~" << nbytes / P << " B, iters="
            << iters << ")\n\n";

  Table t({"eager threshold", "protocol of chunks", "native MB/s", "tuned MB/s",
           "improvement"});
  std::vector<std::size_t> thresholds{0, 1024, 4096, 8192, 16384, 65536};
  if (opt.quick) thresholds = {0, 8192, 65536};
  for (std::size_t th : thresholds) {
    netsim::CostModel cost = netsim::CostModel::hornet();
    cost.eager_threshold = th;
    netsim::SimSpec spec{Topology::hornet(P), cost, iters};
    const Comparison c = compare_ring_bcasts(P, nbytes, 0, spec);
    t.add({std::to_string(th),
           th >= nbytes / P + 1 ? "eager" : "rendezvous",
           format_mbps(c.native.bandwidth), format_mbps(c.tuned.bandwidth),
           format_percent(c.improvement())});
  }
  std::cout << t.render()
            << "\nReading: the tuned ring helps most once chunks are eager "
               "(send-only ranks stream ahead; iterations pipeline); under "
               "rendezvous the ring stays lock-stepped and only the skipped "
               "tail transfers help.\n";
  return 0;
}
