// The paper's §I describes MPICH3's medium-message / non-power-of-two
// broadcast as MULTI-CORE AWARE: binomial broadcast inside the root's
// node, scatter-ring-allgather across node leaders, binomial inside every
// other node. This bench reproduces that full structure and swaps only the
// inter-node phase between the native (enclosed) and tuned ring — i.e. the
// paper's optimization applied exactly where MPICH3 would host it.
#include <iostream>

#include "bench_common.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "coll/bcast_smp.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"

using namespace bsb;
using namespace bsb::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const std::vector<int> procs = opt.quick ? std::vector<int>{33}
                                           : std::vector<int>{33, 65, 129, 257};
  const std::vector<std::uint64_t> sizes{12288, 131072, 524287};

  std::cout << "SMP-aware broadcast (intra binomial + inter ring + intra "
               "binomial), native vs tuned inter phase\n"
            << "cluster: Hornet-like 24-core nodes; note the LEADER ring size "
               "is the node count\n\n";

  Table t({"np", "nodes", "msg size", "native MB/s", "tuned MB/s", "improvement"});
  for (int P : procs) {
    const Topology topo = Topology::hornet(P);
    for (std::uint64_t nbytes : sizes) {
      const int iters = opt.quick ? 4 : (nbytes <= 16384 ? 20 : 8);
      netsim::SimSpec spec{topo, netsim::CostModel::hornet(), iters};
      auto run = [&](bool tuned) {
        return netsim::simulate_program(
            P, nbytes,
            [&](Comm& c, std::span<std::byte> b) {
              coll::bcast_smp(c, b, 0, topo,
                              [tuned](Comm& l, std::span<std::byte> lb, int lr) {
                                if (tuned) {
                                  core::bcast_scatter_ring_tuned(l, lb, lr);
                                } else {
                                  coll::bcast_scatter_ring_native(l, lb, lr);
                                }
                              });
            },
            spec);
      };
      const auto native = run(false);
      const auto tuned = run(true);
      t.add({std::to_string(P), std::to_string(topo.num_nodes()),
             format_bytes(nbytes), format_mbps(native.bandwidth),
             format_mbps(tuned.bandwidth),
             format_percent(tuned.bandwidth / native.bandwidth - 1.0)});
    }
  }
  std::cout << t.render()
            << "\nReading: with few nodes the leader ring is tiny, so the "
               "tuned ring's absolute saving is small but never negative; "
               "gains grow with the node count, matching the paper's 'both "
               "communication levels benefit' argument (§IV).\n";
  return 0;
}
