// Concurrent-collective serving benchmark: a Poisson stream of 8-rank
// broadcasts over overlapping windows of a 64-rank cluster, all contending
// for the shared per-node NICs. Every arrival fetches its schedule from
// the process-wide schedule cache (the serving hot path never recompiles a
// plan) and joins one concurrent netsim replay; the report is throughput
// plus p50/p99 completion latency, native vs tuned ring, as a
// bsb-bench-v1 artifact.
//
// Quick mode is fully deterministic (fixed seed, fixed job count), so the
// checked-in results/BENCH_concurrent_serving.json baseline can be
// regenerated bit-for-bit and gated with bench_compare.py --require-all.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bsbutil/rng.hpp"
#include "coll/plan.hpp"
#include "coll/schedule_cache.hpp"
#include "comm/topology.hpp"
#include "core/icoll.hpp"
#include "netsim/costmodel.hpp"
#include "netsim/replay.hpp"
#include "trace/match.hpp"
#include "trace/schedule.hpp"

namespace bsb::bench {
namespace {

constexpr int kWorldRanks = 64;
constexpr int kRanksPerNode = 4;  // every 8-rank window spans >= 2 nodes
constexpr int kCommRanks = 8;
constexpr std::uint64_t kBytes = 256 * 1024;
constexpr std::uint64_t kSeed = 0x5e21f1ce2015ULL;

/// At P=8 (power of two) the MPICH defaults would route 256 KiB to
/// scatter+recursive-doubling, where the ring flavor never runs. Lower the
/// medium-message cut so the serving comparison exercises the paper's
/// scatter+ring path, native vs tuned.
core::BcastConfig ring_config(bool tuned) {
  core::BcastConfig cfg;
  cfg.mmsg_limit = 64 * 1024;
  cfg.use_tuned_ring = tuned;
  return cfg;
}

/// A coll::Plan replayed under netsim: the per-rank step lists translate
/// 1:1 into trace ops (plans cannot hold barriers or foreign offsets).
trace::Schedule schedule_from_plan(const coll::Plan& plan) {
  trace::Schedule s;
  s.nranks = plan.nranks;
  s.nbytes = plan.nbytes;
  s.ops.resize(plan.steps.size());
  for (std::size_t r = 0; r < plan.steps.size(); ++r) {
    for (const coll::PlanStep& step : plan.steps[r]) {
      trace::Op op;
      switch (step.kind) {
        case coll::PlanStep::Kind::Send:
          op.kind = trace::OpKind::Send;
          break;
        case coll::PlanStep::Kind::Recv:
          op.kind = trace::OpKind::Recv;
          break;
        case coll::PlanStep::Kind::SendRecv:
          op.kind = trace::OpKind::SendRecv;
          break;
      }
      op.dst = step.dst;
      op.send_tag = step.tag;
      op.send_bytes = step.send_len;
      op.send_off = step.send_off;
      op.src = step.src;
      op.recv_tag = step.tag;
      op.recv_cap = step.recv_len;
      op.recv_off = step.recv_off;
      s.ops[r].push_back(op);
    }
  }
  return s;
}

struct Arrival {
  double t = 0;
  int window = 0;  // first world rank of the communicator
  int root = 0;    // root within the communicator
};

/// Poisson process over overlapping windows: exponential inter-arrival
/// times, uniform window starts and roots. Deterministic for a seed.
std::vector<Arrival> draw_arrivals(int n, double mean_interarrival) {
  SplitMix64 rng(kSeed);
  std::vector<Arrival> out;
  double t = 0;
  for (int i = 0; i < n; ++i) {
    t += -mean_interarrival * std::log(1.0 - rng.next_double());
    Arrival a;
    a.t = t;
    a.window = static_cast<int>(rng.next_below(kWorldRanks - kCommRanks + 1));
    a.root = static_cast<int>(rng.next_below(kCommRanks));
    out.push_back(a);
  }
  return out;
}

struct ServingRun {
  netsim::ConcurrentReplayResult replay;
  std::vector<double> latencies;  // seconds, one per job
  double throughput = 0;          // completed jobs per second of makespan
};

/// Serve the arrival stream with one bcast flavor. All jobs run in a
/// single concurrent replay so they genuinely contend on the wires.
ServingRun serve(const std::vector<Arrival>& arrivals, bool tuned,
                 const Topology& topo, const netsim::CostModel& cost) {
  const core::BcastConfig cfg = ring_config(tuned);

  // Keep every distinct plan's schedule + match alive for the replay. The
  // plans themselves come from (and stay in) the process schedule cache.
  struct Compiled {
    std::shared_ptr<const coll::Plan> plan;
    trace::Schedule sched;
    trace::MatchResult match;
  };
  std::map<const coll::Plan*, Compiled> compiled;
  std::vector<netsim::ReplayJob> jobs;
  for (const Arrival& a : arrivals) {
    std::shared_ptr<const coll::Plan> plan =
        core::bcast_plan(kCommRanks, kBytes, a.root, cfg);
    auto [it, inserted] = compiled.try_emplace(plan.get());
    if (inserted) {
      it->second.plan = plan;
      it->second.sched = schedule_from_plan(*plan);
      it->second.match = trace::match_schedule(it->second.sched);
    }
    netsim::ReplayJob job;
    job.sched = &it->second.sched;
    job.match = &it->second.match;
    job.arrival = a.t;
    // Plans are root-canonical (one compilation serves every root), so
    // plan rank r is relative rank r: map it to world rank
    // window + (root + r) % P, keeping the root at window + a.root.
    for (int r = 0; r < kCommRanks; ++r) {
      job.rank_map.push_back(a.window + (a.root + r) % kCommRanks);
    }
    jobs.push_back(std::move(job));
  }

  ServingRun run;
  run.replay = netsim::replay_concurrent(jobs, topo, cost);
  run.latencies = run.replay.job_latency;
  run.throughput = run.replay.makespan > 0
                       ? static_cast<double>(jobs.size()) / run.replay.makespan
                       : 0.0;
  return run;
}

int run_bench(const Options& opt) {
  const int njobs = opt.quick ? 96 : 512;
  const Topology topo(kWorldRanks, kRanksPerNode, Placement::Block);
  const netsim::CostModel cost = netsim::CostModel::hornet();

  coll::process_schedule_cache().clear();

  // Calibrate the offered load off the uncontended native latency: mean
  // inter-arrival well below the solo service time keeps several
  // broadcasts in flight (shared-NIC contention) without runaway queueing.
  const auto solo_plan =
      core::bcast_plan(kCommRanks, kBytes, 0, ring_config(false));
  const trace::Schedule solo_sched = schedule_from_plan(*solo_plan);
  const trace::MatchResult solo_match = trace::match_schedule(solo_sched);
  netsim::ReplayJob solo_job;
  solo_job.sched = &solo_sched;
  solo_job.match = &solo_match;
  for (int r = 0; r < kCommRanks; ++r) solo_job.rank_map.push_back(r);
  const std::vector<netsim::ReplayJob> solo_jobs{solo_job};
  const double solo_latency =
      netsim::replay_concurrent(solo_jobs, topo, cost).job_latency[0];
  const double mean_interarrival = solo_latency * 0.15;

  const std::vector<Arrival> arrivals = draw_arrivals(njobs, mean_interarrival);
  const ServingRun native = serve(arrivals, /*tuned=*/false, topo, cost);
  const ServingRun tuned = serve(arrivals, /*tuned=*/true, topo, cost);
  const coll::ScheduleCache::Stats cache = coll::process_schedule_cache().stats();

  std::vector<double> native_samples = native.latencies;
  std::vector<double> tuned_samples = tuned.latencies;
  const BenchMetric mn = summarize_samples("serving_native_P8_256KiB",
                                           native_samples, kBytes, kCommRanks);
  const BenchMetric mt = summarize_samples("serving_tuned_P8_256KiB",
                                           tuned_samples, kBytes, kCommRanks);

  std::cout << "== concurrent-collective serving (" << njobs << " jobs, P="
            << kCommRanks << ", " << kBytes / 1024 << " KiB, "
            << kWorldRanks << " ranks / " << topo.num_nodes()
            << " nodes) ==\n";
  std::printf("solo native latency %.1f us; mean inter-arrival %.1f us\n",
              solo_latency * 1e6, mean_interarrival * 1e6);
  std::printf("%-8s  %12s  %10s  %10s\n", "flavor", "jobs/s", "p50 us", "p99 us");
  std::printf("%-8s  %12.0f  %10.2f  %10.2f\n", "native", native.throughput,
              mn.p50_us, mn.p99_us);
  std::printf("%-8s  %12.0f  %10.2f  %10.2f\n", "tuned", tuned.throughput,
              mt.p50_us, mt.p99_us);
  std::printf("p99 speedup %.2fx; schedule cache: %llu hits / %llu misses "
              "(hit rate %.1f%%, %llu evictions)\n",
              mt.p99_us > 0 ? mn.p99_us / mt.p99_us : 0.0,
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              cache.hit_rate() * 100.0,
              static_cast<unsigned long long>(cache.evictions));

  int failures = 0;
  // The serving loop must be cache-hot: every arrival after the first per
  // (root, flavor) shape reuses a compiled plan.
  if (cache.hit_rate() < 0.9) {
    std::fprintf(stderr,
                 "FAIL: schedule-cache hit rate %.1f%% below the 90%% "
                 "steady-state bar\n",
                 cache.hit_rate() * 100.0);
    ++failures;
  }
  // The paper's claim under contention: fewer transfers -> less NIC load
  // -> the tuned ring's tail latency must not lose to the native ring.
  if (mt.p99_us > mn.p99_us * 1.0001) {
    std::fprintf(stderr,
                 "FAIL: tuned p99 %.2f us exceeds native p99 %.2f us under "
                 "shared-NIC contention\n",
                 mt.p99_us, mn.p99_us);
    ++failures;
  }

  if (!opt.json_path.empty()) {
    write_bench_json(opt.json_path, "concurrent_serving", {mn, mt}, opt.quick);
    std::cout << "wrote " << opt.json_path << "\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bsb::bench

int main(int argc, char** argv) {
  const bsb::bench::Options opt = bsb::bench::parse_options(argc, argv);
  return bsb::bench::run_bench(opt);
}
