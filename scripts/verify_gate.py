#!/usr/bin/env python3
"""Gate on a bsb-verify JSON artifact.

Usage: verify_gate.py VERIFY_JSON

Checks the bsb-verify-v1 schema, requires zero failures (case-level and
closed-form), re-asserts the paper's anchor transfer counts
(P=8: 56 -> 44, P=10: 90 -> 75), the generalized reduction-family
anchors (P=8: 68 / 124 -> 112, P=10: 105 / 195 -> 180), and the
hierarchical leader-group anchors (8 leaders: 63 -> 51 inter-node
messages, 10 leaders: 99 -> 84), and requires the ownership-aware
collectives to appear in the per-variant coverage.

Also gates the static-analysis passes section: every pass (rotation
equivalence, tag-space lint, symbolic resource bounds) must be present
with all its fields — a missing section is an error, mirroring
bench_compare.py --require-all — the rotation and bound proofs must have
run on at least one case with zero failures, and the tag-space lint must
cover the full ctx range [1, 2046] with the largest remapped tag below
the 2^16 namespace stride.
Exit 0 = gate passed.
"""

import json
import sys

SCHEMA = "bsb-verify-v1"
PAPER_ANCHORS = {
    "p8_native": 56,
    "p8_tuned": 44,
    "p10_native": 90,
    "p10_tuned": 75,
}
FAMILY_ANCHORS = {
    "p8_blocked_rs": 68,
    "p8_allreduce_native": 124,
    "p8_allreduce_tuned": 112,
    "p10_blocked_rs": 105,
    "p10_allreduce_native": 195,
    "p10_allreduce_tuned": 180,
}
HIER_ANCHORS = {
    "l8_inter_native": 63,
    "l8_inter_tuned": 51,
    "l10_inter_native": 99,
    "l10_inter_tuned": 84,
}
REQUIRED_VARIANTS = [
    "bcast-scatter-ring-tuned",
    "reduce-scatter-ring",
    "reduce-scatter-blocks",
    "allreduce-rsag-native",
    "allreduce-rsag-tuned",
    "allgatherv-ring-native",
    "allgatherv-ring-tuned",
    "allgather-bruck-hier",
    "bcast-hier",
]
REQUIRED_KEYS = [
    "schema",
    "pmax",
    "sizes",
    "eager_thresholds",
    "cases",
    "failures",
    "proofs",
    "schedule_ops",
    "closed_form_failures",
    "paper",
    "family",
    "hier",
    "passes",
    "per_variant",
    "failed",
    "elapsed_seconds",
]
# Every analysis pass must report every field: a silently absent pass is
# indistinguishable from "never ran", which is exactly what this gate
# exists to catch.
REQUIRED_PASSES = {
    "rotation": ["cases", "failures", "steps"],
    "tagspace": ["ok", "base_tags", "contexts", "checks", "max_remapped"],
    "bounds": ["eager_cases", "eager_failures", "shm_cases", "shm_failures"],
}


def fail(msg: str) -> "int":
    print(f"verify_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    for key in REQUIRED_KEYS:
        if key not in doc:
            return fail(f"missing key '{key}'")
    if doc["schema"] != SCHEMA:
        return fail(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if doc["cases"] <= 0:
        return fail("no cases were verified")
    if doc["proofs"] <= 0:
        return fail("no properties were proven")
    if doc["failures"] != 0:
        return fail(f"{doc['failures']} case failure(s): {doc['failed']}")
    if doc["closed_form_failures"]:
        return fail(f"closed-form failures: {doc['closed_form_failures']}")
    for key, want in PAPER_ANCHORS.items():
        got = doc["paper"].get(key)
        if got != want:
            return fail(f"paper anchor {key}: got {got}, expected {want}")
    for key, want in FAMILY_ANCHORS.items():
        got = doc["family"].get(key)
        if got != want:
            return fail(f"family anchor {key}: got {got}, expected {want}")
    for key, want in HIER_ANCHORS.items():
        got = doc["hier"].get(key)
        if got != want:
            return fail(f"hier anchor {key}: got {got}, expected {want}")
    for name, stats in doc["per_variant"].items():
        if stats["failures"] != 0:
            return fail(f"variant {name}: {stats['failures']} failure(s)")
    for name in REQUIRED_VARIANTS:
        if doc["per_variant"].get(name, {}).get("cases", 0) <= 0:
            return fail(f"variant {name} missing from the sweep coverage")

    passes = doc["passes"]
    for name, fields in REQUIRED_PASSES.items():
        if name not in passes:
            return fail(f"passes section missing pass '{name}'")
        for field in fields:
            if field not in passes[name]:
                return fail(f"pass '{name}' missing field '{field}'")
    rotation = passes["rotation"]
    if rotation["cases"] <= 0:
        return fail("rotation-equivalence pass proved zero cases")
    if rotation["failures"] != 0:
        return fail(f"rotation-equivalence: {rotation['failures']} failure(s)")
    tagspace = passes["tagspace"]
    if not tagspace["ok"]:
        return fail(f"tag-space lint failed: {tagspace.get('witnesses')}")
    if tagspace["contexts"] != 2046:
        return fail(
            f"tag-space lint covered ctx range [1, {tagspace['contexts']}], "
            "expected [1, 2046]"
        )
    if tagspace["base_tags"] < 21:
        return fail(
            f"tag-space lint saw {tagspace['base_tags']} base tags, "
            "expected the full >= 21 tag registry"
        )
    if not 0 <= tagspace["max_remapped"] <= 65535:
        return fail(
            f"largest remapped tag {tagspace['max_remapped']} escapes the "
            "2^16 SubComm namespace stride"
        )
    bounds = passes["bounds"]
    if bounds["eager_cases"] <= 0:
        return fail("eager-bound pass proved zero cases")
    if bounds["eager_failures"] != 0:
        return fail(f"eager bounds: {bounds['eager_failures']} failure(s)")
    if bounds["shm_cases"] <= 0:
        return fail("shm-pool pass proved zero cases")
    if bounds["shm_failures"] != 0:
        return fail(f"shm pool: {bounds['shm_failures']} failure(s)")

    print(
        f"verify_gate: ok — {doc['cases']} cases, {doc['proofs']} proofs, "
        f"{doc['schedule_ops']} schedule ops, 0 failures "
        f"(rotation {rotation['cases']} cases / {rotation['steps']} steps, "
        f"tagspace {tagspace['checks']} checks over {tagspace['contexts']} "
        f"contexts, bounds {bounds['eager_cases']}+{bounds['shm_cases']} cases)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
