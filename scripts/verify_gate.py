#!/usr/bin/env python3
"""Gate on a bsb-verify JSON artifact.

Usage: verify_gate.py VERIFY_JSON

Checks the bsb-verify-v1 schema, requires zero failures (case-level and
closed-form), re-asserts the paper's anchor transfer counts
(P=8: 56 -> 44, P=10: 90 -> 75), the generalized reduction-family
anchors (P=8: 68 / 124 -> 112, P=10: 105 / 195 -> 180), and the
hierarchical leader-group anchors (8 leaders: 63 -> 51 inter-node
messages, 10 leaders: 99 -> 84), and requires the ownership-aware
collectives to appear in the per-variant coverage.
Exit 0 = gate passed.
"""

import json
import sys

SCHEMA = "bsb-verify-v1"
PAPER_ANCHORS = {
    "p8_native": 56,
    "p8_tuned": 44,
    "p10_native": 90,
    "p10_tuned": 75,
}
FAMILY_ANCHORS = {
    "p8_blocked_rs": 68,
    "p8_allreduce_native": 124,
    "p8_allreduce_tuned": 112,
    "p10_blocked_rs": 105,
    "p10_allreduce_native": 195,
    "p10_allreduce_tuned": 180,
}
HIER_ANCHORS = {
    "l8_inter_native": 63,
    "l8_inter_tuned": 51,
    "l10_inter_native": 99,
    "l10_inter_tuned": 84,
}
REQUIRED_VARIANTS = [
    "bcast-scatter-ring-tuned",
    "reduce-scatter-ring",
    "reduce-scatter-blocks",
    "allreduce-rsag-native",
    "allreduce-rsag-tuned",
    "allgatherv-ring-native",
    "allgatherv-ring-tuned",
    "allgather-bruck-hier",
    "bcast-hier",
]
REQUIRED_KEYS = [
    "schema",
    "pmax",
    "sizes",
    "eager_thresholds",
    "cases",
    "failures",
    "proofs",
    "schedule_ops",
    "closed_form_failures",
    "paper",
    "family",
    "hier",
    "per_variant",
    "failed",
    "elapsed_seconds",
]


def fail(msg: str) -> "int":
    print(f"verify_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    for key in REQUIRED_KEYS:
        if key not in doc:
            return fail(f"missing key '{key}'")
    if doc["schema"] != SCHEMA:
        return fail(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if doc["cases"] <= 0:
        return fail("no cases were verified")
    if doc["proofs"] <= 0:
        return fail("no properties were proven")
    if doc["failures"] != 0:
        return fail(f"{doc['failures']} case failure(s): {doc['failed']}")
    if doc["closed_form_failures"]:
        return fail(f"closed-form failures: {doc['closed_form_failures']}")
    for key, want in PAPER_ANCHORS.items():
        got = doc["paper"].get(key)
        if got != want:
            return fail(f"paper anchor {key}: got {got}, expected {want}")
    for key, want in FAMILY_ANCHORS.items():
        got = doc["family"].get(key)
        if got != want:
            return fail(f"family anchor {key}: got {got}, expected {want}")
    for key, want in HIER_ANCHORS.items():
        got = doc["hier"].get(key)
        if got != want:
            return fail(f"hier anchor {key}: got {got}, expected {want}")
    for name, stats in doc["per_variant"].items():
        if stats["failures"] != 0:
            return fail(f"variant {name}: {stats['failures']} failure(s)")
    for name in REQUIRED_VARIANTS:
        if doc["per_variant"].get(name, {}).get("cases", 0) <= 0:
            return fail(f"variant {name} missing from the sweep coverage")
    print(
        f"verify_gate: ok — {doc['cases']} cases, {doc['proofs']} proofs, "
        f"{doc['schedule_ops']} schedule ops, 0 failures"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
