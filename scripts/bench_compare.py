#!/usr/bin/env python3
"""Validate and compare bsb-bench-v1 JSON artifacts (BENCH_*.json).

Usage:
  bench_compare.py validate FILE
      Check that FILE is a well-formed bsb-bench-v1 artifact.
  bench_compare.py compare BASELINE NEW [--max-regress FRAC] [--min-speedup X]
                   [--require-all]
      Fail (exit 1) if any metric present in both files regressed in
      ops/sec by more than FRAC (default 0.30, i.e. new >= 0.7x baseline).
      With --min-speedup X, additionally require every shared metric to
      reach at least X times the baseline ops/sec (used to assert a
      claimed optimization actually landed). With --require-all, a metric
      present in the baseline but absent from NEW is an error instead of a
      note — a gate cannot pass because the new run silently dropped a
      series.

Exit codes: 0 ok, 1 validation/threshold failure, 2 usage error.

The schema (written by bench::write_bench_json, documented in
EXPERIMENTS.md):
  { "schema": "bsb-bench-v1", "bench": str, "quick": bool,
    "metrics": [ { "name": str, "ops_per_sec": num, "p50_us": num,
                   "p99_us": num, "samples": int, "bytes": int,
                   "ranks": int } ] }
"""

import argparse
import json
import sys

REQUIRED_METRIC_FIELDS = {
    "name": str,
    "ops_per_sec": (int, float),
    "p50_us": (int, float),
    "p99_us": (int, float),
    "samples": int,
    "bytes": int,
    "ranks": int,
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def validate(doc, path):
    errors = []
    if doc.get("schema") != "bsb-bench-v1":
        errors.append(f"schema is {doc.get('schema')!r}, expected 'bsb-bench-v1'")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("missing/empty 'bench' name")
    if not isinstance(doc.get("quick"), bool):
        errors.append("'quick' must be a boolean")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append("'metrics' must be a non-empty list")
        metrics = []
    seen = set()
    for i, m in enumerate(metrics):
        if not isinstance(m, dict):
            errors.append(f"metrics[{i}] is not an object")
            continue
        for field, types in REQUIRED_METRIC_FIELDS.items():
            if field not in m:
                errors.append(f"metrics[{i}] missing field {field!r}")
            elif not isinstance(m[field], types) or isinstance(m[field], bool):
                errors.append(f"metrics[{i}].{field} has wrong type")
        name = m.get("name")
        if name in seen:
            errors.append(f"duplicate metric name {name!r}")
        seen.add(name)
        if isinstance(m.get("ops_per_sec"), (int, float)) and m["ops_per_sec"] <= 0:
            errors.append(f"metrics[{i}].ops_per_sec must be > 0 (got {m['ops_per_sec']})")
        if isinstance(m.get("samples"), int) and m["samples"] <= 0:
            errors.append(f"metrics[{i}].samples must be > 0")
    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"{path}: valid bsb-bench-v1 ({doc['bench']}, {len(metrics)} metrics)")


def metric_map(doc):
    return {m["name"]: m for m in doc["metrics"]}


def compare(base_doc, new_doc, base_path, new_path, max_regress, min_speedup,
            require_all=False):
    base, new = metric_map(base_doc), metric_map(new_doc)
    shared = [n for n in base if n in new]
    if not shared:
        sys.exit("error: the two artifacts share no metric names")
    missing = [n for n in base if n not in new]
    if missing:
        severity = "error" if require_all else "note"
        print(f"{severity}: {len(missing)} baseline metric(s) absent from "
              f"{new_path}: {', '.join(sorted(missing))}", file=sys.stderr)
        if require_all:
            sys.exit(1)
    failures = []
    width = max(len(n) for n in shared)
    print(f"{'metric':<{width}}  {'base ops/s':>12}  {'new ops/s':>12}  "
          f"{'ratio':>7}  {'p50 µs':>9}  {'p99 µs':>9}")
    for name in shared:
        b, n = base[name], new[name]
        ratio = n["ops_per_sec"] / b["ops_per_sec"] if b["ops_per_sec"] else 0.0
        flag = ""
        if ratio < 1.0 - max_regress:
            flag = "  REGRESSION"
            failures.append(f"{name}: ops/sec {ratio:.2f}x baseline "
                            f"(allowed >= {1.0 - max_regress:.2f}x)")
        if min_speedup is not None and ratio < min_speedup:
            flag = "  BELOW TARGET"
            failures.append(f"{name}: ops/sec {ratio:.2f}x baseline "
                            f"(required >= {min_speedup:.2f}x)")
        print(f"{name:<{width}}  {b['ops_per_sec']:>12.0f}  "
              f"{n['ops_per_sec']:>12.0f}  {ratio:>6.2f}x  "
              f"{n['p50_us']:>9.2f}  {n['p99_us']:>9.2f}{flag}")
    if failures:
        print(f"\nbench_compare: {len(failures)} threshold failure(s) "
              f"({base_path} -> {new_path}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: ok ({len(shared)} metrics within thresholds)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    v = sub.add_parser("validate")
    v.add_argument("file")
    c = sub.add_parser("compare")
    c.add_argument("baseline")
    c.add_argument("new")
    c.add_argument("--max-regress", type=float, default=0.30,
                   help="max allowed fractional ops/sec regression (default 0.30)")
    c.add_argument("--min-speedup", type=float, default=None,
                   help="require every shared metric to reach this ops/sec "
                        "multiple of the baseline")
    c.add_argument("--require-all", action="store_true",
                   help="fail when a baseline metric is missing from NEW "
                        "instead of noting it")
    args = parser.parse_args()
    if args.cmd == "validate":
        doc = load(args.file)
        validate(doc, args.file)
    else:
        base_doc, new_doc = load(args.baseline), load(args.new)
        validate(base_doc, args.baseline)
        validate(new_doc, args.new)
        compare(base_doc, new_doc, args.baseline, args.new,
                args.max_regress, args.min_speedup, args.require_all)


if __name__ == "__main__":
    main()
