#!/usr/bin/env bash
# One-command reproduction: configure, build, run the full test suite, then
# regenerate every paper figure/table (plus ablations) with CSVs under
# results/. Outputs mirror EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/bench_*; do
  name="$(basename "$b")"
  echo "===================================================================="
  echo "===== ${name}"
  # Figure harnesses accept --csv-dir; google-benchmark binaries don't.
  case "${name}" in
    bench_micro_*) "$b" ;;
    *) "$b" --csv-dir results ;;
  esac
done | tee results/full_bench_run.txt

echo
echo "All done. Compare against EXPERIMENTS.md; CSVs are in results/."
