#!/usr/bin/env bash
# Sanitized gate: build everything with -fsanitize=address,undefined (the
# `asan` CMake preset), run the tier-1 test suite, then a 30-second bounded
# differential fuzz pass (docs/FUZZING.md). Any sanitizer report, test
# failure, or fuzz discrepancy fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake --preset asan
cmake --build --preset asan -j "${JOBS}"

# halt_on_error makes a UBSan hit fail the process, not just print.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0"  # threads park in mailboxes at exit

ctest --preset asan -j "${JOBS}"

echo "==== bounded fuzz pass (30s, sanitized) ===="
build-asan/tools/bsb-fuzz --time-budget=30 --cases=1000000
build-asan/tools/bsb-fuzz --selftest

echo "check.sh: all green"
