#!/usr/bin/env bash
# Sanitized gate: build everything with -fsanitize=address,undefined (the
# `asan` CMake preset), run the tier-1 test suite, then a 30-second bounded
# differential fuzz pass (docs/FUZZING.md). Any sanitizer report, test
# failure, or fuzz discrepancy fails the script. A second build under
# -fsanitize=thread (the `tsan` preset) then runs the thread-backend tier-1
# tests — the mpisim hot path uses lock-free completion flags and targeted
# wakeups, so every change there must also be TSan-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== strict build (-Werror -Wconversion) ===="
cmake --preset strict
cmake --build --preset strict -j "${JOBS}"

echo "==== clang-tidy (skips when unavailable) ===="
scripts/tidy.sh

cmake --preset asan
cmake --build --preset asan -j "${JOBS}"

# halt_on_error makes a UBSan hit fail the process, not just print.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0"  # threads park in mailboxes at exit

# The scale-labeled verifier test records multi-GB P=4096 schedules;
# sanitizer shadow memory makes that pass disproportionately slow, and the
# plain tier-1 ctest run covers it. Everything else runs sanitized.
ctest --preset asan -j "${JOBS}" -LE scale

echo "==== bounded fuzz pass (30s, sanitized) ===="
build-asan/tools/bsb-fuzz --time-budget=30 --cases=1000000
build-asan/tools/bsb-fuzz --selftest

echo "==== reduction-family replays (sanitized) ===="
# One deterministic replay per ownership-aware variant, covering both
# operators, both dtypes and a zero-block skewed layout.
build-asan/tools/bsb-fuzz --variant=reduce-scatter-ring --ranks=10 \
  --root=3 --bytes=640 --op=sum --dtype=f64
build-asan/tools/bsb-fuzz --variant=reduce-scatter-blocks --ranks=8 \
  --root=5 --bytes=512 --op=max --dtype=i32
build-asan/tools/bsb-fuzz --variant=allreduce-rsag-native --ranks=10 \
  --root=0 --bytes=1280 --op=max --dtype=f64
build-asan/tools/bsb-fuzz --variant=allreduce-rsag-tuned --ranks=8 \
  --root=7 --bytes=1024 --op=sum --dtype=i32
build-asan/tools/bsb-fuzz --variant=allreduce-recursive-doubling --ranks=16 \
  --bytes=2048 --op=sum --dtype=f64
build-asan/tools/bsb-fuzz --variant=allgatherv-ring-native --ranks=10 \
  --root=4 --bytes=997 --skew-seed=7
build-asan/tools/bsb-fuzz --variant=allgatherv-ring-tuned --ranks=13 \
  --root=12 --bytes=12288 --skew-seed=99
build-asan/tools/bsb-fuzz --variant=allgather-bruck-hier --ranks=12 \
  --bytes=768 --smp-cores=4
# Hierarchical broadcast over a ragged node shape with a non-leader root.
build-asan/tools/bsb-fuzz --variant=bcast-hier --ranks=11 --root=5 \
  --bytes=65536 --nodes=4,4,3 --tuned=1

echo "==== static schedule proofs (sanitized) ===="
build-asan/tools/bsb-verify --selftest
build-asan/tools/bsb-verify --pmax=48

echo "==== TSan pass (thread backend + progress engine + chaos + matching) ===="
cmake --preset tsan
cmake --build --preset tsan --target test_mpisim test_matching test_chaos \
  test_icoll test_hier bsb-fuzz -j "${JOBS}"
# Fail loudly if the tsan build is stale: every binary we are about to run
# must exist and be no older than the newest first-party source. A silent
# skip here would report "TSan clean" for code that was never instrumented.
NEWEST_SRC="$(find src tests tools -name '*.cpp' -o -name '*.hpp' \
  | xargs ls -t | head -1)"
for bin in build-tsan/tests/test_mpisim build-tsan/tests/test_matching \
           build-tsan/tests/test_chaos build-tsan/tests/test_icoll \
           build-tsan/tests/test_hier build-tsan/tools/bsb-fuzz; do
  if [[ ! -x "${bin}" ]]; then
    echo "check.sh: FATAL: tsan preset build is stale: ${bin} is missing" >&2
    exit 1
  fi
  if [[ "${NEWEST_SRC}" -nt "${bin}" ]]; then
    echo "check.sh: FATAL: tsan preset build is stale: ${bin} is older" \
         "than ${NEWEST_SRC}" >&2
    exit 1
  fi
done
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
build-tsan/tests/test_mpisim
build-tsan/tests/test_matching
build-tsan/tests/test_chaos
build-tsan/tests/test_icoll
build-tsan/tests/test_hier
build-tsan/tools/bsb-fuzz --time-budget=15 --cases=1000000
# Concurrent in-flight collectives under TSan: the progress engine's
# lock-free completion path with three broadcasts per rank at once.
build-tsan/tools/bsb-fuzz --variant=ibcast-concurrent --ranks=16 \
  --bytes=65536 --root=5 --mmsg=32768 --tuned=1
# Hier fan-out under TSan: the simulated shm channel's single-copy path
# over a ragged node shape with a non-leader root.
build-tsan/tools/bsb-fuzz --variant=bcast-hier --ranks=11 --root=5 \
  --bytes=65536 --nodes=4,4,3 --tuned=1

echo "check.sh: all green"
