#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over the first-party sources using
# the compile_commands.json exported by the `strict` CMake preset.
#
#   scripts/tidy.sh                       # whole tree
#   scripts/tidy.sh src/verify src/coll   # one or more subtrees
#
# Exits 0 when clang-tidy is unavailable (CI images without LLVM), after
# printing how to get it — the strict -Werror build still gates those runs.
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    if command -v "${cand}" >/dev/null 2>&1; then
      TIDY="${cand}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to override)."
  echo "tidy.sh: skipping static analysis; the strict -Werror preset still applies."
  exit 0
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ ! -f build-strict/compile_commands.json ]]; then
  cmake --preset strict
fi

SCOPES=("$@")
FILES=()
while IFS= read -r f; do
  FILES+=("$f")
done < <(find src tests tools bench examples -name '*.cpp' | sort)
if [[ ${#SCOPES[@]} -gt 0 ]]; then
  KEPT=()
  for f in "${FILES[@]}"; do
    for scope in "${SCOPES[@]}"; do
      if [[ "$f" == "${scope}"* ]]; then
        KEPT+=("$f")
        break
      fi
    done
  done
  FILES=("${KEPT[@]}")
fi

echo "tidy.sh: ${TIDY} over ${#FILES[@]} file(s), ${JOBS} job(s)"
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 8 "${TIDY}" -p build-strict --quiet
echo "tidy.sh: clean"
